"""Request admission queue + dynamic micro-batcher with pluggable flush policies.

Single-image requests are admitted into a bounded FIFO; a consumer (the
server's dispatch loop) pulls *micro-batches*.  When a partial batch flushes
is decided by a :class:`FlushPolicy`:

:class:`FixedFlushPolicy`
    The classic static pair of knobs.  ``max_batch`` flushes as soon as that
    many requests are queued (**flush-on-full**); ``max_wait_s`` flushes no
    later than that long after the *oldest* queued request arrived
    (**flush-on-timeout**).  Larger values build bigger batches, which
    amortise dispatch overhead exactly the way the paper's Fig. 7 batch
    analysis amortises PCM programming, at the cost of head-of-line latency.

:class:`AdaptiveFlushPolicy`
    Deadline/SLO-aware batching.  Every request carries an implicit latency
    budget (``slo_s``); the policy flushes when waiting any longer would blow
    the oldest request's budget, and auto-tunes its flush-on-full target to
    the largest batch whose predicted service time still fits inside the
    budget.  The service-time model starts from
    :meth:`~repro.core.accelerator.OpticalCrossbarAccelerator.analytical_schedule`
    cost estimates of the served workload (see :class:`AnalyticalCostModel`)
    and calibrates its wall-clock scale online from observed batch service
    times.

Backpressure: the queue holds at most ``capacity`` requests.  A blocking
submit waits for space (bounding the producer's rate to the server's); a
non-blocking submit raises :class:`~repro.errors.QueueOverflowError` so
open-loop load generators can count shed load instead of stalling.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.concurrency import make_condition, make_lock, thread_shared
from repro.errors import QueueOverflowError, ServeError, SimulationError

#: Flush policy spellings accepted by :func:`make_flush_policy` and the CLI.
POLICY_KINDS = ("fixed", "adaptive")

#: Reasons a micro-batch can flush, as reported to ``on_flush`` observers.
FLUSH_REASONS = ("full", "deadline", "close")


@dataclass
class ServeRequest:
    """One admitted single-image inference request.

    ``trace`` is the request's :class:`repro.obs.RequestTrace` (``None`` when
    tracing is off or the request was not sampled); ``flush_time`` and
    ``flush_reason`` are stamped by :meth:`MicroBatcher.next_batch` when the
    request leaves the queue, bounding its ``queue_wait`` span.
    """

    seq: int
    image: np.ndarray
    enqueue_time: float
    future: "Future[np.ndarray]" = field(default_factory=Future)
    trace: Optional[object] = None
    flush_time: Optional[float] = None
    flush_reason: Optional[str] = None


# ---------------------------------------------------------------------------
# flush policies
# ---------------------------------------------------------------------------


class FlushPolicy:
    """Decides when the micro-batcher flushes a partial batch.

    A policy answers two questions the consumer loop asks while a batch is
    forming — *how big should this batch get* (:meth:`target_batch`) and *how
    long may the oldest request keep waiting* (:meth:`flush_deadline`) — and
    optionally learns from completed batches via :meth:`observe_batch`.
    Implementations must be thread-safe: the consumer polls while dispatch
    callbacks feed observations.
    """

    kind = "abstract"

    def target_batch(self) -> int:
        """Current flush-on-full threshold (>= 1)."""
        raise NotImplementedError

    def flush_deadline(self, oldest_enqueue_s: float) -> float:
        """Latest clock time a partial batch may keep waiting.

        ``oldest_enqueue_s`` is the admission timestamp of the oldest queued
        request, on the batcher's clock; the return value is on the same
        clock.
        """
        raise NotImplementedError

    def observe_batch(self, size: int, service_time_s: float) -> None:
        """Feedback hook: one ``size``-request batch took ``service_time_s``."""

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly description of the policy's current state."""
        return {"policy": self.kind, "max_batch": self.target_batch()}


class FixedFlushPolicy(FlushPolicy):
    """The static ``max_batch`` / ``max_wait_s`` policy (the PR-3 behaviour)."""

    kind = "fixed"

    def __init__(self, max_batch: int = 8, max_wait_s: float = 0.002) -> None:
        if max_batch < 1:
            raise SimulationError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise SimulationError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)

    def target_batch(self) -> int:
        return self.max_batch

    def flush_deadline(self, oldest_enqueue_s: float) -> float:
        return oldest_enqueue_s + self.max_wait_s

    def snapshot(self) -> Dict[str, object]:
        return {
            "policy": self.kind,
            "max_batch": self.max_batch,
            "max_wait_s": self.max_wait_s,
        }


class AnalyticalCostModel:
    """Affine batch-cost model ``units(B) = fixed + per_image * B``.

    The *units* are analytical seconds from the accelerator's dual-core tile
    schedule — a modelled quantity many orders of magnitude below wall-clock
    simulation time.  What the model contributes is the **shape** of the
    batch-size dependence (how much of a batch's cost is B-independent
    programming/dispatch work versus per-image streaming); the
    :class:`AdaptiveFlushPolicy` fits a single wall-clock scale factor on top
    of it from observed service times.
    """

    def __init__(self, fixed_units: float, per_image_units: float) -> None:
        if per_image_units <= 0:
            raise SimulationError(
                f"per_image_units must be > 0, got {per_image_units}"
            )
        if fixed_units < 0:
            raise SimulationError(f"fixed_units must be >= 0, got {fixed_units}")
        self.fixed_units = float(fixed_units)
        self.per_image_units = float(per_image_units)

    def units(self, batch: int) -> float:
        """Modelled cost of one ``batch``-image micro-batch, in model units."""
        return self.fixed_units + self.per_image_units * max(int(batch), 1)

    @classmethod
    def from_workload(cls, network, weights, config=None) -> "AnalyticalCostModel":
        """Fit the model to a workload via ``analytical_schedule`` queries.

        Sums the analytical makespan of every crossbar layer's tile plan at
        batch sizes 1 and 2 (convolutions stream one im2col patch row per
        output position, dense layers one vector per image) and decomposes
        the two points into the B-independent and per-image components.
        """
        from repro.core.accelerator import OpticalCrossbarAccelerator

        accelerator = OpticalCrossbarAccelerator(config)
        m1 = cls._batch_makespan(accelerator, network, weights, 1)
        m2 = cls._batch_makespan(accelerator, network, weights, 2)
        per_image = max(m2 - m1, 1e-15)
        fixed = max(m1 - per_image, 0.0)
        return cls(fixed_units=fixed, per_image_units=per_image)

    @staticmethod
    def _batch_makespan(accelerator, network, weights, batch: int) -> float:
        from repro.nn.im2col import conv_weights_matrix
        from repro.nn.layers import ConvLayer

        makespan_key = (
            "dual_core_makespan_s"
            if accelerator.config.num_cores >= 2
            else "single_core_makespan_s"
        )
        total = 0.0
        for info in network.crossbar_layers:
            layer = info.layer
            if isinstance(layer, ConvLayer):
                matrix = conv_weights_matrix(np.asarray(weights[layer.name], dtype=float))
                vectors = info.output_shape.height * info.output_shape.width * batch
            else:
                matrix = np.asarray(weights[layer.name], dtype=float)
                vectors = batch
            total += accelerator.analytical_schedule(matrix, vectors)[makespan_key]
        return total


class AdaptiveFlushPolicy(FlushPolicy):
    """Deadline/SLO-aware flush policy with auto-tuned batch sizes.

    Parameters
    ----------
    slo_s:
        Per-request latency budget (enqueue → response delivery).
    cost_model:
        Optional :class:`AnalyticalCostModel` providing the batch-size shape
        of the service time; without one the model degenerates to a purely
        per-image cost (no B-independent component).
    max_batch_cap:
        Hard upper bound on the auto-tuned flush-on-full target.
    safety:
        Fraction of ``slo_s`` the policy actually budgets (the rest is
        headroom for queueing jitter and delivery overhead).
    ewma_alpha:
        Weight of the newest observation in the wall-clock scale calibration.

    Behaviour
    ---------
    * **Flush deadline**: a partial batch flushes when the oldest request has
      consumed its budget minus the predicted service time of the batch that
      would dispatch — i.e. just in time for its response to land inside the
      SLO.
    * **Auto-tuned ``max_batch``**: the flush-on-full target is the largest
      batch whose predicted service time fits in the budget, so under load
      the policy builds the biggest SLO-compatible batches (max PCM-program
      amortisation) instead of a fixed guess.
    * **Calibration**: until the first batch completes there is no wall-clock
      scale, so the policy optimistically budgets the full ``safety * slo_s``
      wait and caps batches at ``max_batch_cap``; every completed batch then
      EWMA-updates the scale.
    """

    kind = "adaptive"

    def __init__(
        self,
        slo_s: float = 0.05,
        cost_model: Optional[AnalyticalCostModel] = None,
        max_batch_cap: int = 64,
        safety: float = 0.8,
        ewma_alpha: float = 0.3,
    ) -> None:
        if slo_s <= 0:
            raise SimulationError(f"slo_s must be > 0, got {slo_s}")
        if max_batch_cap < 1:
            raise SimulationError(f"max_batch_cap must be >= 1, got {max_batch_cap}")
        if not 0 < safety <= 1:
            raise SimulationError(f"safety must be in (0, 1], got {safety}")
        if not 0 < ewma_alpha <= 1:
            raise SimulationError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.slo_s = float(slo_s)
        self.cost_model = cost_model
        self.max_batch_cap = int(max_batch_cap)
        self.safety = float(safety)
        self.ewma_alpha = float(ewma_alpha)
        self._lock = make_lock("AdaptiveFlushPolicy._lock")
        self._scale: Optional[float] = None  # wall-clock seconds per model unit
        self._observed_batches = 0

    # ------------------------------------------------------------------ model
    def _units(self, batch: int) -> float:
        if self.cost_model is not None:
            return self.cost_model.units(batch)
        return float(max(int(batch), 1))

    def estimate_service_s(self, batch: int) -> Optional[float]:
        """Predicted wall-clock service time of a ``batch``-image dispatch.

        ``None`` until the first completed batch calibrates the scale.
        """
        with self._lock:
            scale = self._scale
        if scale is None:
            return None
        return scale * self._units(batch)

    @property
    def budget_s(self) -> float:
        """The portion of the SLO the policy plans against."""
        return self.safety * self.slo_s

    # ------------------------------------------------------------------ policy
    def target_batch(self) -> int:
        with self._lock:
            scale = self._scale
        if scale is None or scale <= 0:
            return self.max_batch_cap
        # largest B with scale * (fixed + per_image * B) <= budget
        per_image = self._units(2) - self._units(1)
        fixed = self._units(1) - per_image
        best = int((self.budget_s / scale - fixed) / per_image)
        return max(1, min(best, self.max_batch_cap))

    def flush_deadline(self, oldest_enqueue_s: float) -> float:
        estimate = self.estimate_service_s(self.target_batch())
        wait_budget = self.budget_s - (estimate or 0.0)
        return oldest_enqueue_s + max(wait_budget, 0.0)

    def observe_batch(self, size: int, service_time_s: float) -> None:
        if size < 1 or service_time_s <= 0:
            return
        observed_scale = float(service_time_s) / self._units(size)
        with self._lock:
            if self._scale is None:
                self._scale = observed_scale
            else:
                self._scale = (
                    self.ewma_alpha * observed_scale
                    + (1.0 - self.ewma_alpha) * self._scale
                )
            self._observed_batches += 1

    def snapshot(self) -> Dict[str, object]:
        target = self.target_batch()
        return {
            "policy": self.kind,
            "slo_s": self.slo_s,
            "safety": self.safety,
            "max_batch": target,
            "max_batch_cap": self.max_batch_cap,
            "calibrated": self._scale is not None,
            "observed_batches": self._observed_batches,
            "estimated_service_s": self.estimate_service_s(target),
        }


def make_flush_policy(
    spec: "str | FlushPolicy",
    *,
    max_batch: int = 8,
    max_wait_s: float = 0.002,
    slo_s: float = 0.05,
    cost_model: Optional[AnalyticalCostModel] = None,
) -> FlushPolicy:
    """Build a flush policy from a CLI-style spelling.

    ``"fixed"`` maps ``max_batch``/``max_wait_s`` onto a
    :class:`FixedFlushPolicy`; ``"adaptive"`` maps ``slo_s``/``cost_model``
    onto an :class:`AdaptiveFlushPolicy` whose auto-tuned batch is capped at
    ``max_batch``.  An already-built :class:`FlushPolicy` passes through.
    """
    if isinstance(spec, FlushPolicy):
        return spec
    if spec == "fixed":
        return FixedFlushPolicy(max_batch=max_batch, max_wait_s=max_wait_s)
    if spec == "adaptive":
        return AdaptiveFlushPolicy(
            slo_s=slo_s, cost_model=cost_model, max_batch_cap=max_batch
        )
    raise SimulationError(
        f"unknown flush policy {spec!r}: expected one of {POLICY_KINDS} "
        "or a FlushPolicy instance"
    )


# ---------------------------------------------------------------------------
# micro-batcher
# ---------------------------------------------------------------------------


@thread_shared
class MicroBatcher:
    """Bounded request queue whose flushes are governed by a :class:`FlushPolicy`.

    Parameters
    ----------
    max_batch, max_wait_s:
        Legacy spelling of the default :class:`FixedFlushPolicy`; ignored
        when ``policy`` is given explicitly.
    capacity:
        Admission-queue bound (>= 1); see the module docstring for the
        backpressure semantics.
    policy:
        The flush policy.  Adaptive policies whose target exceeds
        ``capacity`` are clamped to it.
    on_flush:
        Optional ``callback(reason, size)`` invoked (outside the queue lock)
        for every flushed batch, with ``reason`` one of
        :data:`FLUSH_REASONS`.
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        capacity: int = 128,
        clock=time.monotonic,
        policy: Optional[FlushPolicy] = None,
        on_flush: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        if policy is None:
            policy = FixedFlushPolicy(max_batch=max_batch, max_wait_s=max_wait_s)
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        if isinstance(policy, FixedFlushPolicy) and capacity < policy.max_batch:
            raise SimulationError(
                f"capacity ({capacity}) must be >= max_batch ({policy.max_batch}); "
                "a full batch could otherwise never assemble"
            )
        self.policy = policy
        self.capacity = int(capacity)
        self._clock = clock
        self._on_flush = on_flush
        self._queue: Deque[ServeRequest] = deque()
        self._cond = make_condition("MicroBatcher._cond")
        self._closed = False
        self._seq = 0
        # EWMA of batch service time, fed by observe_batch(); powers the
        # Retry-After hint the HTTP front-ends attach to 429 responses.
        self._ewma_batch_s: Optional[float] = None

    # ------------------------------------------------------------------ producer
    @property
    def max_batch(self) -> int:
        """The policy's current flush-on-full target (capacity-clamped)."""
        return self._target()

    @property
    def max_wait_s(self) -> Optional[float]:
        """The fixed policy's wait knob; ``None`` for adaptive policies."""
        return getattr(self.policy, "max_wait_s", None)

    @property
    def depth(self) -> int:
        """Current number of queued (not yet batched) requests."""
        with self._cond:
            return len(self._queue)

    def submit(
        self,
        image: np.ndarray,
        block: bool = True,
        timeout: Optional[float] = None,
        trace: Optional[object] = None,
    ) -> ServeRequest:
        """Admit one request; returns it with its response future attached.

        With ``block=False`` (or when ``timeout`` expires) a full queue raises
        :class:`QueueOverflowError` instead of waiting for space.  ``trace``
        (a :class:`repro.obs.RequestTrace`) is attached to the request under
        the queue lock — before the dispatch loop can pop it — and its
        ``admit`` span (trace start → admission) is recorded here.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while len(self._queue) >= self.capacity and not self._closed:
                if not block:
                    raise QueueOverflowError(
                        f"admission queue is full ({self.capacity} requests)"
                    )
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    raise QueueOverflowError(
                        f"admission queue still full ({self.capacity} requests) "
                        f"after {timeout:.3f} s"
                    )
                self._cond.wait(remaining)
            if self._closed:
                raise ServeError("micro-batcher is closed to new requests")
            request = ServeRequest(
                seq=self._seq,
                image=np.asarray(image, dtype=float),
                enqueue_time=self._clock(),
                trace=trace,
            )
            if trace is not None:
                trace.add_span("admit", trace.start_s, request.enqueue_time)
            self._seq += 1
            self._queue.append(request)
            self._cond.notify_all()
            return request

    # ------------------------------------------------------------------ consumer
    def _target(self) -> int:
        """The policy's flush-on-full target, clamped into [1, capacity]."""
        return max(1, min(int(self.policy.target_batch()), self.capacity))

    def next_batch(self, poll_timeout_s: Optional[float] = None) -> Optional[List[ServeRequest]]:
        """Pull the next micro-batch, honouring the flush policy.

        Blocks until at least one request is queued, then keeps collecting
        until the policy's target batch is available (flush-on-full) or the
        policy's flush deadline for the oldest request passes.  Returns
        ``None`` when ``poll_timeout_s`` elapses with an empty queue, or when
        the batcher is closed and drained — the consumer's signal to exit.
        """
        with self._cond:
            wait_deadline = (
                None if poll_timeout_s is None else self._clock() + poll_timeout_s
            )
            while not self._queue:
                if self._closed:
                    return None
                remaining = (
                    None if wait_deadline is None else wait_deadline - self._clock()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

            # Re-evaluate the policy every wake-up: adaptive targets and
            # deadlines move as observations arrive while the batch forms.
            while True:
                target = self._target()
                if self._closed or len(self._queue) >= target:
                    break
                remaining = (
                    self.policy.flush_deadline(self._queue[0].enqueue_time)
                    - self._clock()
                )
                if remaining <= 0:
                    break
                self._cond.wait(remaining)

            target = self._target()
            size = min(target, len(self._queue))
            if size >= target:
                reason = "full"
            elif self._closed:
                reason = "close"
            else:
                reason = "deadline"
            batch = [self._queue.popleft() for _ in range(size)]
            flush_time = self._clock()
            for request in batch:
                request.flush_time = flush_time
                request.flush_reason = reason
            # space freed: wake producers blocked on backpressure
            self._cond.notify_all()
        if self._on_flush is not None:
            self._on_flush(reason, len(batch))
        return batch

    def observe_batch(self, size: int, service_time_s: float) -> None:
        """Forward a completed batch's service time to the flush policy."""
        with self._cond:
            if self._ewma_batch_s is None:
                self._ewma_batch_s = float(service_time_s)
            else:
                self._ewma_batch_s += 0.3 * (float(service_time_s) - self._ewma_batch_s)
        self.policy.observe_batch(size, service_time_s)

    def retry_after_hint_s(self) -> float:
        """Estimated seconds until a queue slot frees (backpressure hint).

        Used by the HTTP front-ends for the ``Retry-After`` header on 429
        responses: the number of flush targets queued ahead times the EWMA
        batch service time, clamped to [0.05 s, 30 s].  Before any batch has
        completed there is no service-time signal, so the hint defaults to
        one second (the smallest value the wire can express anyway — HTTP
        Retry-After is whole seconds, rounded up).
        """
        with self._cond:
            depth = len(self._queue)
            ewma = self._ewma_batch_s
            target = max(1, min(int(self.policy.target_batch()), self.capacity))
        if ewma is None:
            return 1.0
        batches_ahead = max(1, -(-depth // target))
        return min(30.0, max(0.05, batches_ahead * ewma))

    # ------------------------------------------------------------------ lifecycle
    def close(self, drain: bool = True) -> None:
        """Refuse new submissions.

        With ``drain=True`` (the default, and the graceful-shutdown path)
        queued requests remain drainable: the dispatch loop keeps pulling
        batches until the queue is empty.  With ``drain=False`` the queue is
        abandoned instead — every pending request's future fails with a
        :class:`~repro.errors.ServeError` so no caller blocks forever on a
        response that will never be computed.
        """
        abandoned: List[ServeRequest] = []
        with self._cond:
            self._closed = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
            self._cond.notify_all()
        if abandoned:
            error = ServeError(
                "server shut down before this request was dispatched"
            )
            for request in abandoned:
                if not request.future.done():
                    request.future.set_exception(error)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed
