"""Request admission queue + dynamic micro-batcher.

Single-image requests are admitted into a bounded FIFO; a consumer (the
server's dispatch loop) pulls *micro-batches* governed by two knobs:

``max_batch``
    Flush as soon as this many requests are queued (**flush-on-full**).
``max_wait_s``
    Flush no later than this long after the *oldest* queued request arrived
    (**flush-on-timeout**) — the classic dynamic-batching latency/throughput
    trade-off: larger waits build bigger batches, which amortise dispatch
    overhead exactly the way the paper's Fig. 7 batch analysis amortises PCM
    programming, at the cost of head-of-line latency.

Backpressure: the queue holds at most ``capacity`` requests.  A blocking
submit waits for space (bounding the producer's rate to the server's); a
non-blocking submit raises :class:`~repro.errors.QueueOverflowError` so
open-loop load generators can count shed load instead of stalling.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.errors import QueueOverflowError, ServeError, SimulationError


@dataclass
class ServeRequest:
    """One admitted single-image inference request."""

    seq: int
    image: np.ndarray
    enqueue_time: float
    future: "Future[np.ndarray]" = field(default_factory=Future)


class MicroBatcher:
    """Bounded request queue with a ``max_batch`` / ``max_wait_s`` flush policy.

    Parameters
    ----------
    max_batch:
        Largest micro-batch :meth:`next_batch` will return (>= 1).
    max_wait_s:
        Longest the oldest queued request may wait before a partial batch is
        flushed; ``0.0`` flushes greedily (whatever is queued right now).
    capacity:
        Admission-queue bound (>= 1); see the module docstring for the
        backpressure semantics.
    """

    def __init__(
        self,
        max_batch: int = 8,
        max_wait_s: float = 0.002,
        capacity: int = 128,
        clock=time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise SimulationError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise SimulationError(f"max_wait_s must be >= 0, got {max_wait_s}")
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        if capacity < max_batch:
            raise SimulationError(
                f"capacity ({capacity}) must be >= max_batch ({max_batch}); "
                "a full batch could otherwise never assemble"
            )
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.capacity = int(capacity)
        self._clock = clock
        self._queue: Deque[ServeRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._seq = 0

    # ------------------------------------------------------------------ producer
    @property
    def depth(self) -> int:
        """Current number of queued (not yet batched) requests."""
        with self._cond:
            return len(self._queue)

    def submit(
        self,
        image: np.ndarray,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> ServeRequest:
        """Admit one request; returns it with its response future attached.

        With ``block=False`` (or when ``timeout`` expires) a full queue raises
        :class:`QueueOverflowError` instead of waiting for space.
        """
        deadline = None if timeout is None else self._clock() + timeout
        with self._cond:
            while len(self._queue) >= self.capacity and not self._closed:
                if not block:
                    raise QueueOverflowError(
                        f"admission queue is full ({self.capacity} requests)"
                    )
                remaining = None if deadline is None else deadline - self._clock()
                if remaining is not None and remaining <= 0:
                    raise QueueOverflowError(
                        f"admission queue still full ({self.capacity} requests) "
                        f"after {timeout:.3f} s"
                    )
                self._cond.wait(remaining)
            if self._closed:
                raise ServeError("micro-batcher is closed to new requests")
            request = ServeRequest(
                seq=self._seq,
                image=np.asarray(image, dtype=float),
                enqueue_time=self._clock(),
            )
            self._seq += 1
            self._queue.append(request)
            self._cond.notify_all()
            return request

    # ------------------------------------------------------------------ consumer
    def next_batch(self, poll_timeout_s: Optional[float] = None) -> Optional[List[ServeRequest]]:
        """Pull the next micro-batch, honouring the flush policy.

        Blocks until at least one request is queued, then keeps collecting
        until ``max_batch`` requests are available (flush-on-full) or the
        oldest request has waited ``max_wait_s`` (flush-on-timeout).  Returns
        ``None`` when ``poll_timeout_s`` elapses with an empty queue, or when
        the batcher is closed and drained — the consumer's signal to exit.
        """
        with self._cond:
            wait_deadline = (
                None if poll_timeout_s is None else self._clock() + poll_timeout_s
            )
            while not self._queue:
                if self._closed:
                    return None
                remaining = (
                    None if wait_deadline is None else wait_deadline - self._clock()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

            flush_deadline = self._queue[0].enqueue_time + self.max_wait_s
            while len(self._queue) < self.max_batch and not self._closed:
                remaining = flush_deadline - self._clock()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)

            batch = [
                self._queue.popleft()
                for _ in range(min(self.max_batch, len(self._queue)))
            ]
            # space freed: wake producers blocked on backpressure
            self._cond.notify_all()
            return batch

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Refuse new submissions; queued requests remain drainable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed
