"""SLO telemetry for the serving subsystem.

:class:`ServeTelemetry` is a thread-safe sink the server (and the load
generator, for client-side numbers) records into:

* per-request **latency** samples (enqueue → response delivery), summarised
  as p50/p95/p99/mean/max.  Samples live in a bounded
  :class:`LatencyReservoir` (Algorithm R): exact percentiles below the bound,
  an unbiased uniform sample above it, and exact streaming count/mean/max
  always — so a week-long serve does not grow memory without bound;
* **throughput** — completed requests over the observation window, measured
  *first admission → last delivery* only (rejections, sheds and autoscaler
  events do not stretch the window, so an idle tail after the last response
  cannot deflate the reported rate);
* **per-stage breakdown** — time per pipeline stage
  (:data:`repro.obs.STAGES`), fed from request traces via
  :meth:`ServeTelemetry.record_stages`; ``snapshot()["stage_breakdown"]``
  answers "where does p99 go" stage by stage, and the stage totals sum to
  the end-to-end latency because the spans tile the request exactly;
* **queue depth** — sampled at every admission, reported as mean/max;
* **batch-size histogram** — how large the dynamically formed micro-batches
  actually were, the knob the paper's Fig. 7 batch analysis turns;
* **flush reasons and sizes** — why each micro-batch left the queue
  (``full`` / ``deadline`` / ``close``) and how big it was when it did
  (per-reason batch/request counts and mean/max sizes), which is how you see
  whether a flush policy is building batches or timing out;
* **autoscaler events** — every replica-count change (direction, old/new
  count, the queue depth and arrival rate that triggered it), so a scaling
  trace can be reconstructed from the snapshot alone.

All durations are seconds; the CLI formats milliseconds.  Percentiles use
the same linear interpolation as ``numpy.percentile``, so telemetry numbers
are directly comparable with offline analyses of recorded latency traces.
:meth:`ServeTelemetry.register_metrics` exports everything into a
:class:`repro.obs.MetricsRegistry` for the ``/metrics`` endpoint.
"""

from __future__ import annotations

import random
import time
from collections import Counter, deque
from typing import Deque, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.concurrency import make_lock, thread_shared
from repro.errors import SimulationError

#: Latency percentiles reported by :meth:`ServeTelemetry.snapshot`.
LATENCY_PERCENTILES = (50, 95, 99)

#: Autoscaler events kept per telemetry sink (older events are dropped).
MAX_SCALE_EVENTS = 256

#: Default bound on retained end-to-end latency samples.
DEFAULT_LATENCY_RESERVOIR = 8192

#: Bound on retained samples per pipeline stage.
STAGE_RESERVOIR = 2048


def latency_summary(latencies_s: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max summary (seconds) of a latency sample list.

    An empty sample yields zeros rather than NaNs so reports stay printable
    for zero-request runs.
    """
    if len(latencies_s) == 0:
        return {
            **{f"latency_p{q}_s": 0.0 for q in LATENCY_PERCENTILES},
            "latency_mean_s": 0.0,
            "latency_max_s": 0.0,
        }
    values = np.asarray(latencies_s, dtype=float)
    summary = {
        f"latency_p{q}_s": float(np.percentile(values, q)) for q in LATENCY_PERCENTILES
    }
    summary["latency_mean_s"] = float(values.mean())
    summary["latency_max_s"] = float(values.max())
    return summary


class LatencyReservoir:
    """Bounded uniform sample of a duration stream (Vitter's Algorithm R).

    Below ``capacity`` the sample is the full stream, so percentiles are
    exact; above it each of the ``n`` observations is retained with equal
    probability ``capacity / n`` (seeded RNG, so runs are reproducible).
    Count, sum, mean and max are streamed exactly regardless of capacity.

    Not self-locking — the owning :class:`ServeTelemetry` serializes access
    under its own lock.
    """

    def __init__(self, capacity: int = DEFAULT_LATENCY_RESERVOIR, seed: int = 0) -> None:
        if capacity < 1:
            raise SimulationError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rng = random.Random(seed)
        self._values: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def add(self, value: float) -> None:
        number = float(value)
        self._count += 1
        self._sum += number
        if number > self._max:
            self._max = number
        if len(self._values) < self.capacity:
            self._values.append(number)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.capacity:
                self._values[slot] = number

    @property
    def count(self) -> int:
        """Exact number of observations (not capped by capacity)."""
        return self._count

    @property
    def total(self) -> float:
        """Exact sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max

    @property
    def saturated(self) -> bool:
        """Whether percentiles are now estimates (stream outgrew capacity)."""
        return self._count > self.capacity

    def values(self) -> List[float]:
        """The retained sample (the full stream while unsaturated)."""
        return list(self._values)

    def summary(self) -> Dict[str, float]:
        """:func:`latency_summary` of the sample, with exact mean/max."""
        summary = latency_summary(self._values)
        summary["latency_mean_s"] = self.mean
        summary["latency_max_s"] = self._max
        return summary


@thread_shared
class ServeTelemetry:
    """Thread-safe SLO metrics sink for one serving session."""

    def __init__(
        self,
        clock=time.perf_counter,
        reservoir_capacity: int = DEFAULT_LATENCY_RESERVOIR,
        seed: int = 0,
    ) -> None:
        self._clock = clock
        self._lock = make_lock("ServeTelemetry._lock")
        self._latencies = LatencyReservoir(capacity=reservoir_capacity, seed=seed)
        self._stage_stats: Dict[str, LatencyReservoir] = {}
        self._batch_sizes: Counter = Counter()
        self._flush_reasons: Counter = Counter()
        self._flush_requests: Counter = Counter()
        self._flush_max_size: Counter = Counter()
        self._service_time_s = 0.0
        self._queue_depth_sum = 0
        self._queue_depth_samples = 0
        self._queue_depth_max = 0
        self._admitted = 0
        self._rejected = 0
        self._shed = 0
        self._requests_failed = 0
        self._batches_failed = 0
        self._scale_events: Deque[Dict[str, object]] = deque(maxlen=MAX_SCALE_EVENTS)
        self._scale_ups = 0
        self._scale_downs = 0
        # Throughput window endpoints: first admission and last delivery.
        # Nothing else moves them — a rejection burst or a late autoscaler
        # event must not stretch the window and dilute throughput_rps.
        self._first_admission_ts: Optional[float] = None
        self._last_delivery_ts: Optional[float] = None

    # ------------------------------------------------------------------ record
    def record_admission(self, queue_depth: int) -> None:
        """One request entered the queue; ``queue_depth`` includes it."""
        with self._lock:
            if self._first_admission_ts is None:
                self._first_admission_ts = self._clock()
            self._admitted += 1
            self._queue_depth_sum += int(queue_depth)
            self._queue_depth_samples += 1
            self._queue_depth_max = max(self._queue_depth_max, int(queue_depth))

    def record_rejection(self) -> None:
        """One request was refused admission (queue overflow)."""
        with self._lock:
            self._rejected += 1

    def record_shed(self) -> None:
        """One request was shed by the circuit breaker (no queue contact)."""
        with self._lock:
            self._shed += 1

    def record_batch_failure(self, size: int) -> None:
        """One micro-batch of ``size`` requests failed permanently.

        The requests' futures resolve with the error; they are counted here
        (not in the latency samples) so ``requests_failed`` +
        ``requests_completed`` accounts for every delivered outcome.
        """
        with self._lock:
            self._batches_failed += 1
            self._requests_failed += int(size)

    def record_flush(self, reason: str, size: int) -> None:
        """One micro-batch of ``size`` requests flushed because of ``reason``."""
        key = str(reason)
        with self._lock:
            self._flush_reasons[key] += 1
            self._flush_requests[key] += int(size)
            self._flush_max_size[key] = max(self._flush_max_size[key], int(size))

    def record_batch(self, size: int, service_time_s: float) -> None:
        """One micro-batch of ``size`` requests finished executing."""
        with self._lock:
            self._batch_sizes[int(size)] += 1
            self._service_time_s += float(service_time_s)

    def record_response(self, latency_s: float) -> None:
        """One request was delivered ``latency_s`` after admission."""
        with self._lock:
            self._last_delivery_ts = self._clock()
            self._latencies.add(float(latency_s))

    def record_stages(self, stages_s: Mapping[str, float]) -> None:
        """Per-stage durations of one delivered request (from its trace).

        ``stages_s`` maps stage names (:data:`repro.obs.STAGES`, plus
        ``"e2e"``) to seconds, as produced by
        :meth:`repro.obs.RequestTrace.stage_durations`.
        """
        with self._lock:
            for name, value in stages_s.items():
                reservoir = self._stage_stats.get(name)
                if reservoir is None:
                    reservoir = LatencyReservoir(capacity=STAGE_RESERVOIR)
                    self._stage_stats[name] = reservoir
                reservoir.add(float(value))

    def record_scale_event(
        self,
        direction: str,
        from_replicas: int,
        to_replicas: int,
        queue_depth: int = 0,
        arrival_rps: float = 0.0,
        reason: str = "",
    ) -> None:
        """The autoscaler changed this model's replica count."""
        with self._lock:
            now = self._clock()
            if direction == "up":
                self._scale_ups += 1
            else:
                self._scale_downs += 1
            self._scale_events.append(
                {
                    "ts": now,
                    "direction": str(direction),
                    "from_replicas": int(from_replicas),
                    "to_replicas": int(to_replicas),
                    "queue_depth": int(queue_depth),
                    "arrival_rps": float(arrival_rps),
                    "reason": str(reason),
                }
            )

    @property
    def admitted_total(self) -> int:
        """Requests admitted so far (the autoscaler's arrival-rate input)."""
        with self._lock:
            return self._admitted

    # ------------------------------------------------------------------ report
    def snapshot(self) -> Dict[str, object]:
        """Aggregate SLO metrics of everything recorded so far."""
        with self._lock:
            completed = self._latencies.count
            latency = self._latencies.summary()
            latency_samples = self._latencies.count if not self._latencies.saturated else len(
                self._latencies.values()
            )
            latency_saturated = self._latencies.saturated
            stage_breakdown = {
                name: {
                    "count": reservoir.count,
                    "total_s": reservoir.total,
                    "mean_s": reservoir.mean,
                    "max_s": reservoir.max,
                    **{
                        f"p{q}_s": percentile
                        for q, percentile in zip(
                            LATENCY_PERCENTILES,
                            _percentiles(reservoir.values()),
                        )
                    },
                }
                for name, reservoir in sorted(self._stage_stats.items())
            }
            batch_sizes = dict(sorted(self._batch_sizes.items()))
            flush_reasons = dict(sorted(self._flush_reasons.items()))
            flush_sizes = {
                reason: {
                    "batches": count,
                    "requests": self._flush_requests[reason],
                    "mean_size": self._flush_requests[reason] / count if count else 0.0,
                    "max_size": self._flush_max_size[reason],
                }
                for reason, count in flush_reasons.items()
            }
            service_time_s = self._service_time_s
            admitted = self._admitted
            rejected = self._rejected
            shed = self._shed
            requests_failed = self._requests_failed
            batches_failed = self._batches_failed
            depth_sum = self._queue_depth_sum
            depth_samples = self._queue_depth_samples
            depth_max = self._queue_depth_max
            scale_events = [dict(event) for event in self._scale_events]
            scale_ups = self._scale_ups
            scale_downs = self._scale_downs
            first_ts = self._first_admission_ts
            last_ts = self._last_delivery_ts

        window_s = (last_ts - first_ts) if (first_ts is not None and last_ts is not None) else 0.0
        num_batches = sum(batch_sizes.values())
        batched_requests = sum(size * count for size, count in batch_sizes.items())
        snapshot: Dict[str, object] = {
            "requests_admitted": admitted,
            "requests_rejected": rejected,
            "requests_shed": shed,
            "requests_completed": completed,
            "requests_failed": requests_failed,
            "batches_failed": batches_failed,
            "window_s": window_s,
            "throughput_rps": completed / window_s if window_s > 0 else 0.0,
            "batches": num_batches,
            "batch_size_histogram": batch_sizes,
            "flush_reasons": flush_reasons,
            "flush_sizes": flush_sizes,
            "mean_batch_size": batched_requests / num_batches if num_batches else 0.0,
            "service_time_s": service_time_s,
            "queue_depth_mean": depth_sum / depth_samples if depth_samples else 0.0,
            "queue_depth_max": depth_max,
            "latency_samples": latency_samples,
            "latency_sample_saturated": latency_saturated,
            "stage_breakdown": stage_breakdown,
            "autoscaler": {
                "scale_ups": scale_ups,
                "scale_downs": scale_downs,
                "events": scale_events,
            },
        }
        snapshot.update(latency)
        return snapshot

    def register_metrics(self, registry, labels: Optional[Dict[str, str]] = None) -> None:
        """Export this sink into a :class:`repro.obs.MetricsRegistry`.

        Registers a scrape-time collector over :meth:`snapshot`, so the
        counters stay single-sourced here and ``/metrics`` always reflects
        the numbers ``GET /v1/stats`` reports.
        """
        base = dict(labels or {})

        def _collect():
            snap = self.snapshot()
            families = [
                {
                    "name": "repro_serve_requests_total",
                    "type": "counter",
                    "help": "Requests by outcome (admitted/rejected/shed/completed/failed).",
                    "samples": [
                        ({**base, "outcome": outcome}, float(snap[f"requests_{outcome}"]))
                        for outcome in ("admitted", "rejected", "shed", "completed", "failed")
                    ],
                },
                {
                    "name": "repro_serve_batches_total",
                    "type": "counter",
                    "help": "Micro-batches executed.",
                    "samples": [(base, float(snap["batches"]))],
                },
                {
                    "name": "repro_serve_batches_failed_total",
                    "type": "counter",
                    "help": "Micro-batches that failed permanently.",
                    "samples": [(base, float(snap["batches_failed"]))],
                },
                {
                    "name": "repro_serve_throughput_rps",
                    "type": "gauge",
                    "help": "Completed requests per second, first admission to last delivery.",
                    "samples": [(base, float(snap["throughput_rps"]))],
                },
                {
                    "name": "repro_serve_queue_depth_max",
                    "type": "gauge",
                    "help": "Maximum admission-queue depth observed.",
                    "samples": [(base, float(snap["queue_depth_max"]))],
                },
                {
                    "name": "repro_serve_mean_batch_size",
                    "type": "gauge",
                    "help": "Mean executed micro-batch size.",
                    "samples": [(base, float(snap["mean_batch_size"]))],
                },
                {
                    "name": "repro_serve_latency_seconds",
                    "type": "gauge",
                    "help": "End-to-end latency quantiles (seconds).",
                    "samples": [
                        (
                            {**base, "quantile": str(q / 100)},
                            float(snap[f"latency_p{q}_s"]),
                        )
                        for q in LATENCY_PERCENTILES
                    ],
                },
            ]
            if snap["flush_reasons"]:
                families.append(
                    {
                        "name": "repro_serve_flushes_total",
                        "type": "counter",
                        "help": "Micro-batch flushes by reason.",
                        "samples": [
                            ({**base, "reason": reason}, float(count))
                            for reason, count in snap["flush_reasons"].items()
                        ],
                    }
                )
            scale = snap["autoscaler"]
            if scale["scale_ups"] or scale["scale_downs"]:
                families.append(
                    {
                        "name": "repro_serve_scale_events_total",
                        "type": "counter",
                        "help": "Autoscaler replica-count changes by direction.",
                        "samples": [
                            ({**base, "direction": "up"}, float(scale["scale_ups"])),
                            ({**base, "direction": "down"}, float(scale["scale_downs"])),
                        ],
                    }
                )
            breakdown = snap["stage_breakdown"]
            if breakdown:
                families.append(
                    {
                        "name": "repro_serve_stage_seconds_total",
                        "type": "counter",
                        "help": "Cumulative time per pipeline stage (seconds).",
                        "samples": [
                            ({**base, "stage": stage}, float(stats["total_s"]))
                            for stage, stats in breakdown.items()
                        ],
                    }
                )
                families.append(
                    {
                        "name": "repro_serve_stage_p99_seconds",
                        "type": "gauge",
                        "help": "p99 time per pipeline stage (seconds).",
                        "samples": [
                            ({**base, "stage": stage}, float(stats["p99_s"]))
                            for stage, stats in breakdown.items()
                        ],
                    }
                )
            return families

        registry.register_collector(_collect)


def _percentiles(values: Sequence[float]) -> List[float]:
    """:data:`LATENCY_PERCENTILES` of ``values`` (zeros when empty)."""
    if not values:
        return [0.0 for _ in LATENCY_PERCENTILES]
    array = np.asarray(values, dtype=float)
    return [float(np.percentile(array, q)) for q in LATENCY_PERCENTILES]


@thread_shared
class FrontendTelemetry:
    """Thread-safe counters for one HTTP front-end (connections and routes).

    The serving telemetry above describes the *engine* side of a request
    (admission, batching, delivery); this sink describes the *wire* side —
    how many sockets are open, how many requests each route answered with
    which status class, and how much of the traffic used the streaming /
    SSE surfaces.  The async front-end records into one of these and
    exports it via :meth:`register_metrics`; the connection gauge is what
    distinguishes "one thread per client" saturation from event-loop
    multiplexing on a dashboard.
    """

    def __init__(self) -> None:
        self._lock = make_lock("FrontendTelemetry._lock")
        self._connections_opened = 0
        self._connections_active = 0
        self._requests: Counter = Counter()  # (route, status) -> count
        self._streams_started = 0
        self._stream_items = 0
        self._sse_streams = 0
        self._sse_events = 0

    def connection_opened(self) -> None:
        with self._lock:
            self._connections_opened += 1
            self._connections_active += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._connections_active -= 1

    def record_request(self, route: str, status: int) -> None:
        """One answered request: ``route`` is the route template, not the URL."""
        with self._lock:
            self._requests[(str(route), int(status))] += 1

    def record_stream(self, items: int) -> None:
        """One finished NDJSON streaming response that delivered ``items``."""
        with self._lock:
            self._streams_started += 1
            self._stream_items += int(items)

    def record_sse(self, events: int) -> None:
        """One finished SSE subscription that emitted ``events`` events."""
        with self._lock:
            self._sse_streams += 1
            self._sse_events += int(events)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "connections_opened": self._connections_opened,
                "connections_active": self._connections_active,
                "requests": {
                    f"{route} {status}": count
                    for (route, status), count in sorted(self._requests.items())
                },
                "streams_started": self._streams_started,
                "stream_items": self._stream_items,
                "sse_streams": self._sse_streams,
                "sse_events": self._sse_events,
            }

    def register_metrics(self, registry, labels: Optional[Dict[str, str]] = None) -> None:
        """Export into a :class:`repro.obs.MetricsRegistry` (scrape-time)."""
        base = dict(labels or {})

        def _collect():
            with self._lock:
                requests = dict(self._requests)
                opened = self._connections_opened
                active = self._connections_active
                streams = self._streams_started
                stream_items = self._stream_items
                sse_streams = self._sse_streams
                sse_events = self._sse_events
            families = [
                {
                    "name": "repro_http_connections_opened_total",
                    "type": "counter",
                    "help": "TCP connections accepted by the HTTP front-end.",
                    "samples": [(base, float(opened))],
                },
                {
                    "name": "repro_http_connections_active",
                    "type": "gauge",
                    "help": "Currently open HTTP connections.",
                    "samples": [(base, float(active))],
                },
                {
                    "name": "repro_http_streamed_items_total",
                    "type": "counter",
                    "help": "Per-item results delivered over NDJSON streaming responses.",
                    "samples": [(base, float(stream_items))],
                },
                {
                    "name": "repro_http_streams_total",
                    "type": "counter",
                    "help": "Streaming (NDJSON) inference responses served.",
                    "samples": [(base, float(streams))],
                },
                {
                    "name": "repro_http_sse_streams_total",
                    "type": "counter",
                    "help": "Server-sent-event progress subscriptions served.",
                    "samples": [(base, float(sse_streams))],
                },
                {
                    "name": "repro_http_sse_events_total",
                    "type": "counter",
                    "help": "Server-sent events emitted.",
                    "samples": [(base, float(sse_events))],
                },
            ]
            if requests:
                families.append(
                    {
                        "name": "repro_http_requests_total",
                        "type": "counter",
                        "help": "HTTP requests answered, by route template and status.",
                        "samples": [
                            (
                                {**base, "route": route, "status": str(status)},
                                float(count),
                            )
                            for (route, status), count in sorted(requests.items())
                        ],
                    }
                )
            return families

        registry.register_collector(_collect)
