"""SLO telemetry for the serving subsystem.

:class:`ServeTelemetry` is a thread-safe sink the server (and the load
generator, for client-side numbers) records into:

* per-request **latency** samples (enqueue → response delivery), summarised
  as p50/p95/p99/mean/max;
* **throughput** — completed requests over the observation window (first
  admission to last delivery);
* **queue depth** — sampled at every admission, reported as mean/max;
* **batch-size histogram** — how large the dynamically formed micro-batches
  actually were, the knob the paper's Fig. 7 batch analysis turns;
* **flush reasons** — why each micro-batch left the queue (``full`` /
  ``deadline`` / ``close``), which is how you see whether a flush policy is
  building batches or timing out;
* **autoscaler events** — every replica-count change (direction, old/new
  count, the queue depth and arrival rate that triggered it), so a scaling
  trace can be reconstructed from the snapshot alone.

All durations are seconds; the CLI formats milliseconds.  Percentiles use
the same linear interpolation as ``numpy.percentile``, so telemetry numbers
are directly comparable with offline analyses of recorded latency traces.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from repro.concurrency import make_lock, thread_shared

#: Latency percentiles reported by :meth:`ServeTelemetry.snapshot`.
LATENCY_PERCENTILES = (50, 95, 99)

#: Autoscaler events kept per telemetry sink (older events are dropped).
MAX_SCALE_EVENTS = 256


def latency_summary(latencies_s: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max summary (seconds) of a latency sample list.

    An empty sample yields zeros rather than NaNs so reports stay printable
    for zero-request runs.
    """
    if len(latencies_s) == 0:
        return {
            **{f"latency_p{q}_s": 0.0 for q in LATENCY_PERCENTILES},
            "latency_mean_s": 0.0,
            "latency_max_s": 0.0,
        }
    values = np.asarray(latencies_s, dtype=float)
    summary = {
        f"latency_p{q}_s": float(np.percentile(values, q)) for q in LATENCY_PERCENTILES
    }
    summary["latency_mean_s"] = float(values.mean())
    summary["latency_max_s"] = float(values.max())
    return summary


@thread_shared
class ServeTelemetry:
    """Thread-safe SLO metrics sink for one serving session."""

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = make_lock("ServeTelemetry._lock")
        self._latencies_s: List[float] = []
        self._batch_sizes: Counter = Counter()
        self._flush_reasons: Counter = Counter()
        self._service_time_s = 0.0
        self._queue_depth_sum = 0
        self._queue_depth_samples = 0
        self._queue_depth_max = 0
        self._admitted = 0
        self._rejected = 0
        self._shed = 0
        self._requests_failed = 0
        self._batches_failed = 0
        self._scale_events: Deque[Dict[str, object]] = deque(maxlen=MAX_SCALE_EVENTS)
        self._scale_ups = 0
        self._scale_downs = 0
        self._first_event_ts: Optional[float] = None
        self._last_event_ts: Optional[float] = None

    # ------------------------------------------------------------------ record
    def _touch_locked(self, now: float) -> None:
        if self._first_event_ts is None:
            self._first_event_ts = now
        self._last_event_ts = now

    def record_admission(self, queue_depth: int) -> None:
        """One request entered the queue; ``queue_depth`` includes it."""
        with self._lock:
            self._touch_locked(self._clock())
            self._admitted += 1
            self._queue_depth_sum += int(queue_depth)
            self._queue_depth_samples += 1
            self._queue_depth_max = max(self._queue_depth_max, int(queue_depth))

    def record_rejection(self) -> None:
        """One request was refused admission (queue overflow)."""
        with self._lock:
            self._touch_locked(self._clock())
            self._rejected += 1

    def record_shed(self) -> None:
        """One request was shed by the circuit breaker (no queue contact)."""
        with self._lock:
            self._touch_locked(self._clock())
            self._shed += 1

    def record_batch_failure(self, size: int) -> None:
        """One micro-batch of ``size`` requests failed permanently.

        The requests' futures resolve with the error; they are counted here
        (not in the latency samples) so ``requests_failed`` +
        ``requests_completed`` accounts for every delivered outcome.
        """
        with self._lock:
            self._touch_locked(self._clock())
            self._batches_failed += 1
            self._requests_failed += int(size)

    def record_flush(self, reason: str, size: int) -> None:
        """One micro-batch of ``size`` requests flushed because of ``reason``."""
        with self._lock:
            self._touch_locked(self._clock())
            self._flush_reasons[str(reason)] += 1

    def record_batch(self, size: int, service_time_s: float) -> None:
        """One micro-batch of ``size`` requests finished executing."""
        with self._lock:
            self._touch_locked(self._clock())
            self._batch_sizes[int(size)] += 1
            self._service_time_s += float(service_time_s)

    def record_response(self, latency_s: float) -> None:
        """One request was delivered ``latency_s`` after admission."""
        with self._lock:
            self._touch_locked(self._clock())
            self._latencies_s.append(float(latency_s))

    def record_scale_event(
        self,
        direction: str,
        from_replicas: int,
        to_replicas: int,
        queue_depth: int = 0,
        arrival_rps: float = 0.0,
        reason: str = "",
    ) -> None:
        """The autoscaler changed this model's replica count."""
        with self._lock:
            now = self._clock()
            self._touch_locked(now)
            if direction == "up":
                self._scale_ups += 1
            else:
                self._scale_downs += 1
            self._scale_events.append(
                {
                    "ts": now,
                    "direction": str(direction),
                    "from_replicas": int(from_replicas),
                    "to_replicas": int(to_replicas),
                    "queue_depth": int(queue_depth),
                    "arrival_rps": float(arrival_rps),
                    "reason": str(reason),
                }
            )

    @property
    def admitted_total(self) -> int:
        """Requests admitted so far (the autoscaler's arrival-rate input)."""
        with self._lock:
            return self._admitted

    # ------------------------------------------------------------------ report
    def snapshot(self) -> Dict[str, object]:
        """Aggregate SLO metrics of everything recorded so far."""
        with self._lock:
            latencies = list(self._latencies_s)
            batch_sizes = dict(sorted(self._batch_sizes.items()))
            flush_reasons = dict(sorted(self._flush_reasons.items()))
            service_time_s = self._service_time_s
            admitted = self._admitted
            rejected = self._rejected
            shed = self._shed
            requests_failed = self._requests_failed
            batches_failed = self._batches_failed
            depth_sum = self._queue_depth_sum
            depth_samples = self._queue_depth_samples
            depth_max = self._queue_depth_max
            scale_events = [dict(event) for event in self._scale_events]
            scale_ups = self._scale_ups
            scale_downs = self._scale_downs
            first_ts = self._first_event_ts
            last_ts = self._last_event_ts

        completed = len(latencies)
        window_s = (last_ts - first_ts) if (first_ts is not None and last_ts is not None) else 0.0
        num_batches = sum(batch_sizes.values())
        batched_requests = sum(size * count for size, count in batch_sizes.items())
        snapshot: Dict[str, object] = {
            "requests_admitted": admitted,
            "requests_rejected": rejected,
            "requests_shed": shed,
            "requests_completed": completed,
            "requests_failed": requests_failed,
            "batches_failed": batches_failed,
            "window_s": window_s,
            "throughput_rps": completed / window_s if window_s > 0 else 0.0,
            "batches": num_batches,
            "batch_size_histogram": batch_sizes,
            "flush_reasons": flush_reasons,
            "mean_batch_size": batched_requests / num_batches if num_batches else 0.0,
            "service_time_s": service_time_s,
            "queue_depth_mean": depth_sum / depth_samples if depth_samples else 0.0,
            "queue_depth_max": depth_max,
            "autoscaler": {
                "scale_ups": scale_ups,
                "scale_downs": scale_downs,
                "events": scale_events,
            },
        }
        snapshot.update(latency_summary(latencies))
        return snapshot
