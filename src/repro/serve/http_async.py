"""Single-event-loop asyncio HTTP front-end for the inference server.

:class:`AsyncServeHTTPServer` is the default ``serve --http`` front-end.  It
multiplexes every client on one event loop (thread ``serve-async-http``)
instead of the legacy one-thread-per-connection
:class:`~repro.serve.http.ServeHTTPServer`, which is what lifts the
connection ceiling from "a few hundred OS threads" to "as many keep-alive
sockets as the fd limit allows".  The wire features only this front-end has:

* **keep-alive + pipelining** — requests on one connection are answered
  in order; a client may write several before reading the first response;
* **streaming responses** — ``POST /v1/infer`` with ``{"stream": true}``
  answers with chunked newline-delimited JSON, one item per line as the
  re-order buffer releases it, so a large batch's first result arrives
  after one batch flush instead of after the whole batch;
* **SSE progress** — ``{"request_id": "..."}`` names a request and
  ``GET /v1/infer/{request_id}/events`` follows its completion counters as
  ``text/event-stream`` ``progress``/``done`` events from a second
  connection;
* **backpressure, not blocked accepts** — queue overflow surfaces as
  ``429`` with a ``Retry-After`` hint computed from the micro-batcher's
  observed service time, instead of tying up an accept thread.

The engine side is unchanged: requests funnel through the *same*
``InferenceServer.submit()`` path as in-process callers and the legacy
front-end, bridged with ``loop.run_in_executor`` (admission may block) and
``asyncio.wrap_future`` (results are plain ``concurrent.futures`` futures
resolved by engine threads).  That is why outputs stay bitwise identical to
a direct ``run_batch`` for every executor spec and IPC transport — the
async layer only encodes and decodes bytes.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
import urllib.parse
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.concurrency import make_lock, thread_shared
from repro.errors import BadRequestError, ServeError, UnknownModelError
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.serve.http import (
    DEFAULT_HOST,
    MAX_BODY_BYTES,
    dump_json,
    error_body,
    health_payload,
    infer_response_body,
    models_payload,
    parse_infer_request,
    retry_after_headers,
    status_for_error,
    stream_item_body,
    submit_images,
    trace_payload,
)
from repro.serve.server import InferenceServer
from repro.serve.telemetry import FrontendTelemetry

#: Per-line read limit (request line / single header); also the stream
#: buffer's high-water mark.  Generous: a base64 body arrives via
#: Content-Length reads, not readline.
READLINE_LIMIT = 64 * 1024

#: How long the SSE poller sleeps between progress snapshots.
SSE_POLL_S = 0.05

#: How many *finished* named requests the progress registry remembers, so a
#: subscriber that arrives after completion still gets an immediate ``done``.
PROGRESS_CAPACITY = 256

#: Seconds :meth:`AsyncServeHTTPServer.stop` waits for in-flight connection
#: handlers before cancelling them (SIGTERM drain grace).
DRAIN_GRACE_S = 30.0


class _HTTPError(Exception):
    """A malformed request that must be answered without the serve mapping."""

    def __init__(self, status: int, message: str, close: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.close = close


@thread_shared
class RequestProgress:
    """Completion counters for one named request (``request_id`` payload).

    Mutated from engine threads (future done-callbacks) and read from the
    event loop (the SSE poller), hence the lock.
    """

    def __init__(self, request_id: str, total: int) -> None:
        self._lock = make_lock("RequestProgress._lock")
        self.request_id = request_id
        self.total = int(total)
        self._completed = 0
        self._failed = 0

    def observe(self, future) -> None:
        """Future done-callback: count one completion or failure."""
        failed = future.cancelled() or future.exception() is not None
        with self._lock:
            if failed:
                self._failed += 1
            else:
                self._completed += 1

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            completed, failed = self._completed, self._failed
        if completed + failed >= self.total:
            status = "failed" if failed else "done"
        else:
            status = "running"
        return {
            "request_id": self.request_id,
            "total": self.total,
            "completed": completed,
            "failed": failed,
            "status": status,
        }


@thread_shared
class _ProgressRegistry:
    """Bounded ``request_id`` → :class:`RequestProgress` map (LRU eviction)."""

    def __init__(self, capacity: int = PROGRESS_CAPACITY) -> None:
        self._lock = make_lock("_ProgressRegistry._lock")
        self._entries: "OrderedDict[str, RequestProgress]" = OrderedDict()
        self.capacity = int(capacity)

    def register(self, request_id: str, total: int) -> RequestProgress:
        progress = RequestProgress(request_id, total)
        with self._lock:
            self._entries[request_id] = progress
            self._entries.move_to_end(request_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return progress

    def get(self, request_id: str) -> Optional[RequestProgress]:
        with self._lock:
            return self._entries.get(request_id)


class AsyncServeHTTPServer:
    """Asyncio HTTP front-end over a running :class:`InferenceServer`.

    Public surface matches :class:`~repro.serve.http.ServeHTTPServer`
    (``start/stop/port/url/health/request_shutdown/wait`` plus context
    management), so the CLI and tests swap the two classes freely.  The
    event loop runs on a dedicated daemon thread; ``start()`` returns once
    the socket is bound, and binding failures raise :class:`ServeError`
    from ``start()`` itself.

    Parameters mirror the threaded front-end: ``server`` (lifecycle not
    owned), ``host``/``port`` (``port=0`` → ephemeral), ``allow_shutdown``
    (enables ``POST /v1/shutdown``), ``max_body_bytes`` (400 above it).
    """

    def __init__(
        self,
        server: InferenceServer,
        host: str = DEFAULT_HOST,
        port: int = 0,
        allow_shutdown: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        self.server = server
        self.host = host
        self.allow_shutdown = bool(allow_shutdown)
        self.max_body_bytes = int(max_body_bytes)
        self.telemetry = FrontendTelemetry()
        self._requested_port = int(port)
        self._bound_port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._bridge: Optional[ThreadPoolExecutor] = None
        self._started_ts: Optional[float] = None
        self._startup_error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._shutdown_event = threading.Event()
        self._progress = _ProgressRegistry()
        registry = getattr(server, "metrics", None)
        if registry is not None:
            self.telemetry.register_metrics(registry, {"frontend": "async"})

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "AsyncServeHTTPServer":
        """Bind the socket and start the event-loop thread."""
        if self._thread is not None:
            raise ServeError("HTTP front-end already started")
        self._ready.clear()
        self._startup_error = None
        self._bound_port = None
        # The admission bridge: submit() may block on a full queue, which
        # must never happen on the event loop.  Sized well above the replica
        # count so slow admissions queue here, not in the loop.
        self._bridge = ThreadPoolExecutor(max_workers=32, thread_name_prefix="async-http")
        self._started_ts = time.monotonic()
        self._thread = threading.Thread(
            target=self._run_loop, name="serve-async-http", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            self._bridge.shutdown(wait=False)
            self._bridge = None
            raise ServeError(
                f"cannot bind HTTP front-end to {self.host}:{self._requested_port}: "
                f"{self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self) -> None:
        """Close the listener, drain in-flight requests, join (idempotent)."""
        if self._thread is None:
            return
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._signal_stop)
            except RuntimeError:
                pass  # loop already shut down between the check and the call
        self._thread.join()
        self._thread = None
        self._loop = None
        if self._bridge is not None:
            self._bridge.shutdown(wait=True)
            self._bridge = None
        self._shutdown_event.set()

    def _signal_stop(self) -> None:
        if self._stop_async is not None:
            self._stop_async.set()

    def __enter__(self) -> "AsyncServeHTTPServer":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def request_shutdown(self) -> None:
        """Signal whoever owns the front-end (see :meth:`wait`) to stop it.

        Handlers must not call :meth:`stop` themselves — joining the serving
        thread from inside one of its handlers would deadlock — so shutdown
        is a flag the owning thread observes, exactly as on the threaded
        front-end.
        """
        self._shutdown_event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown is requested (or ``timeout`` elapses)."""
        return self._shutdown_event.wait(timeout)

    # ------------------------------------------------------------------ state
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    @property
    def url(self) -> str:
        """Base URL clients should target (wildcard binds → loopback)."""
        host = "127.0.0.1" if self.host in ("0.0.0.0", "::", "") else self.host
        return f"http://{host}:{self.port}"

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` body (see :func:`~repro.serve.http.health_payload`)."""
        uptime = (
            time.monotonic() - self._started_ts if self._started_ts is not None else 0.0
        )
        return health_payload(self.server, uptime)

    # ------------------------------------------------------------------ event loop
    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            pending = [task for task in asyncio.all_tasks(loop) if not task.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(asyncio.gather(*pending, return_exceptions=True))
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        self._stop_async = asyncio.Event()
        self._conn_tasks: set = set()
        try:
            server = await asyncio.start_server(
                self._handle_connection,
                host=self.host,
                port=self._requested_port,
                limit=READLINE_LIMIT,
            )
        except OSError as error:
            self._startup_error = error
            self._ready.set()
            return
        self._bound_port = int(server.sockets[0].getsockname()[1])
        self._ready.set()
        try:
            await self._stop_async.wait()
        finally:
            server.close()
            await server.wait_closed()
            # In-flight handlers see _stop_async after their current response
            # and close; idle keep-alive connections notice it immediately.
            tasks = [task for task in self._conn_tasks if not task.done()]
            if tasks:
                _, hung = await asyncio.wait(tasks, timeout=DRAIN_GRACE_S)
                for task in hung:
                    task.cancel()
                if hung:
                    await asyncio.gather(*hung, return_exceptions=True)

    # ------------------------------------------------------------------ connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self.telemetry.connection_opened()
        assert self._stop_async is not None
        stop_wait = asyncio.ensure_future(self._stop_async.wait())
        try:
            while not self._stop_async.is_set():
                # Race the next request against shutdown so idle keep-alive
                # connections release promptly during a drain.
                read = asyncio.ensure_future(self._read_request(reader))
                await asyncio.wait({read, stop_wait}, return_when=asyncio.FIRST_COMPLETED)
                if not read.done():
                    read.cancel()
                    try:
                        await read
                    except (asyncio.CancelledError, Exception):  # repro: noqa[RPR105]
                        pass  # connection is closing; the request was never read
                    break
                try:
                    request = read.result()
                except _HTTPError as error:
                    await self._send_json(
                        writer,
                        error.status,
                        {"error": str(error), "type": "BadRequestError"},
                        keep_alive=False,
                    )
                    break
                except (ConnectionError, asyncio.IncompleteReadError, ValueError):
                    break  # peer went away mid-request or overran the limit
                if request is None:
                    break  # clean EOF between requests
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (ConnectionError, BrokenPipeError):
            pass  # peer reset; nothing left to answer
        finally:
            stop_wait.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            self.telemetry.connection_closed()
            if task is not None:
                self._conn_tasks.discard(task)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
        """Parse one request; returns ``(method, path, query, headers, body)``.

        ``None`` means the peer closed cleanly between requests.  Raises
        :class:`_HTTPError` for malformed framing (answered with 400 and a
        closed connection — framing errors poison the byte stream).
        """
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").rstrip("\r\n").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HTTPError(400, f"malformed request line {request_line[:64]!r}")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HTTPError(400, f"malformed header line {line[:64]!r}")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length_header = headers.get("content-length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                raise _HTTPError(400, f"invalid Content-Length {length_header!r}") from None
            if length < 0 or length > self.max_body_bytes:
                raise _HTTPError(
                    400,
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_body_bytes}-byte limit",
                )
            body = await reader.readexactly(length)
        split = urllib.parse.urlsplit(target)
        return method, split.path, split.query, headers, body

    # ------------------------------------------------------------------ dispatch
    async def _dispatch(
        self, request: Tuple[str, str, str, Dict[str, str], bytes], writer
    ) -> bool:
        method, path, query, headers, body = request
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        loop = asyncio.get_running_loop()

        async def _in_bridge(fn, *args):
            # Every InferenceServer call leaves the loop: they take engine
            # locks and may block (admission, stats under contention).
            return await loop.run_in_executor(self._bridge, fn, *args)

        try:
            if method == "GET" and path == "/healthz":
                payload = await _in_bridge(self.health)
                self.telemetry.record_request("/healthz", 200)
                await self._send_json(writer, 200, payload, keep_alive)
            elif method == "GET" and path == "/metrics":
                registry = getattr(self.server, "metrics", None)
                if registry is None:
                    raise ServeError("metrics registry not available")
                text = await _in_bridge(registry.render_prometheus)
                self.telemetry.record_request("/metrics", 200)
                await self._send_text(
                    writer, 200, text, PROMETHEUS_CONTENT_TYPE, keep_alive
                )
            elif method == "GET" and path == "/v1/models":
                payload = await _in_bridge(models_payload, self.server)
                self.telemetry.record_request("/v1/models", 200)
                await self._send_json(writer, 200, payload, keep_alive)
            elif method == "GET" and path == "/v1/stats":
                model = urllib.parse.parse_qs(query).get("model", [None])[0]
                try:
                    payload = await _in_bridge(self.server.stats, model)
                except UnknownModelError as error:
                    self.telemetry.record_request("/v1/stats", 404)
                    await self._send_error(writer, 404, error, keep_alive)
                    return keep_alive
                self.telemetry.record_request("/v1/stats", 200)
                await self._send_json(writer, 200, payload, keep_alive)
            elif method == "GET" and path.startswith("/v1/trace/"):
                trace_id = urllib.parse.unquote(path[len("/v1/trace/") :])
                try:
                    payload = await _in_bridge(trace_payload, self.server, trace_id)
                except ServeError as error:
                    self.telemetry.record_request("/v1/trace/{trace_id}", 404)
                    await self._send_error(writer, 404, error, keep_alive)
                    return keep_alive
                self.telemetry.record_request("/v1/trace/{trace_id}", 200)
                await self._send_json(writer, 200, payload, keep_alive)
            elif (
                method == "GET"
                and path.startswith("/v1/infer/")
                and path.endswith("/events")
            ):
                request_id = urllib.parse.unquote(path[len("/v1/infer/") : -len("/events")])
                return await self._sse_events(request_id, writer, keep_alive)
            elif method == "POST" and path == "/v1/infer":
                return await self._infer(body, writer, keep_alive)
            elif method == "POST" and path == "/v1/shutdown" and self.allow_shutdown:
                self.telemetry.record_request("/v1/shutdown", 200)
                await self._send_json(writer, 200, {"status": "shutting-down"}, keep_alive)
                self.request_shutdown()
            elif method not in ("GET", "POST"):
                error = ServeError(f"method {method} not supported")
                self.telemetry.record_request(path, 501)
                await self._send_json(
                    writer, 501, error_body(error), keep_alive
                )
            elif self._known_path(path) and not self._method_matches(method, path):
                error = ServeError(f"method {method} not allowed for {path!r}")
                self.telemetry.record_request(path, 405)
                await self._send_json(writer, 405, error_body(error), keep_alive)
            else:
                error = ServeError(f"unknown path {path!r}")
                self.telemetry.record_request(path, 404)
                await self._send_error(writer, 404, error, keep_alive)
        except (ConnectionError, BrokenPipeError):
            return False
        except Exception as error:  # pragma: no cover - handler safety net
            try:
                await self._send_error(writer, status_for_error(error), error, False)
            except (ConnectionError, BrokenPipeError):
                pass
            return False
        return keep_alive

    @staticmethod
    def _known_path(path: str) -> bool:
        if path in ("/healthz", "/metrics", "/v1/models", "/v1/stats", "/v1/infer", "/v1/shutdown"):
            return True
        return path.startswith("/v1/trace/") or (
            path.startswith("/v1/infer/") and path.endswith("/events")
        )

    @staticmethod
    def _method_matches(method: str, path: str) -> bool:
        if path in ("/v1/infer", "/v1/shutdown"):
            return method == "POST"
        return method == "GET"

    # ------------------------------------------------------------------ infer
    async def _infer(self, body: bytes, writer, keep_alive: bool) -> bool:
        start = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            payload = self._parse_json(body)
            request = parse_infer_request(payload, self.server, allow_stream=True)
            futures = await loop.run_in_executor(
                self._bridge, submit_images, self.server, request
            )
        except Exception as error:
            status = status_for_error(error)
            self.telemetry.record_request("/v1/infer", status)
            await self._send_error(writer, status, error, keep_alive)
            return keep_alive
        if request.request_id is not None:
            progress = self._progress.register(request.request_id, len(futures))
            for future in futures:
                future.add_done_callback(progress.observe)
        if request.stream:
            return await self._infer_stream(request, futures, writer, keep_alive, start)
        results = await asyncio.gather(
            *(asyncio.wrap_future(future) for future in futures), return_exceptions=True
        )
        failure = next((r for r in results if isinstance(r, BaseException)), None)
        if failure is not None:
            status = status_for_error(failure)
            self.telemetry.record_request("/v1/infer", status)
            await self._send_error(writer, status, failure, keep_alive)
            return keep_alive
        outputs = np.stack(results)
        latency_ms = (time.monotonic() - start) * 1e3
        self.telemetry.record_request("/v1/infer", 200)
        await self._send_json(
            writer, 200, infer_response_body(outputs, request, latency_ms), keep_alive
        )
        return keep_alive

    async def _infer_stream(
        self, request, futures: List, writer, keep_alive: bool, start: float
    ) -> bool:
        """Chunked NDJSON response: one line per item as futures resolve.

        Futures resolve in submission order (the batcher's re-order buffer
        releases results in order), so awaiting them sequentially streams
        items ``0, 1, 2, ...`` with no buffering.  A failure emits one
        ``{"index", "error", "type"}`` line and ends the stream — earlier
        items were already delivered and stay valid.
        """
        await self._start_stream(writer, "application/x-ndjson", keep_alive)
        delivered = 0
        failed = False
        try:
            for index, future in enumerate(futures):
                try:
                    output = await asyncio.wrap_future(future)
                except Exception as error:
                    item = {"index": index, **error_body(error)}
                    await self._write_chunk(writer, dump_json(item) + b"\n")
                    failed = True
                    break
                line = dump_json(stream_item_body(index, output, request.encoding))
                await self._write_chunk(writer, line + b"\n")
                delivered += 1
            if not failed:
                final: Dict[str, object] = {
                    "done": True,
                    "count": delivered,
                    "latency_ms": (time.monotonic() - start) * 1e3,
                }
                if request.model is not None:
                    final["model"] = request.model
                if request.request_id is not None:
                    final["request_id"] = request.request_id
                await self._write_chunk(writer, dump_json(final) + b"\n")
            await self._end_stream(writer)
        except (ConnectionError, BrokenPipeError):
            keep_alive = False  # client went away mid-stream
        self.telemetry.record_stream(delivered)
        self.telemetry.record_request("/v1/infer", 200)
        return keep_alive and not failed

    # ------------------------------------------------------------------ SSE
    async def _sse_events(self, request_id: str, writer, keep_alive: bool) -> bool:
        progress = self._progress.get(request_id)
        if progress is None:
            error = ServeError(f"unknown request id {request_id!r}")
            self.telemetry.record_request("/v1/infer/{request_id}/events", 404)
            await self._send_error(writer, 404, error, keep_alive)
            return keep_alive
        assert self._stop_async is not None
        await self._start_stream(writer, "text/event-stream", keep_alive)
        events = 0
        last: Optional[Dict[str, object]] = None
        try:
            while True:
                snap = progress.snapshot()
                if snap != last:
                    name = "done" if snap["status"] in ("done", "failed") else "progress"
                    frame = f"event: {name}\ndata: {dump_json(snap).decode('utf-8')}\n\n"
                    await self._write_chunk(writer, frame.encode("utf-8"))
                    events += 1
                    last = snap
                    if name == "done":
                        break
                if self._stop_async.is_set():
                    break  # draining: end the stream, client resubscribes
                try:
                    await asyncio.wait_for(self._stop_async.wait(), timeout=SSE_POLL_S)
                except asyncio.TimeoutError:
                    pass
            await self._end_stream(writer)
        except (ConnectionError, BrokenPipeError):
            keep_alive = False
        self.telemetry.record_sse(events)
        self.telemetry.record_request("/v1/infer/{request_id}/events", 200)
        return keep_alive

    # ------------------------------------------------------------------ responses
    @staticmethod
    def _parse_json(body: bytes):
        if not body:
            raise BadRequestError("missing Content-Length header")
        try:
            return json.loads(body)
        except ValueError as error:
            raise BadRequestError(f"request body is not valid JSON: {error}") from error

    @staticmethod
    def _head(
        status: int,
        content_type: str,
        keep_alive: bool,
        extra: Optional[Dict[str, str]] = None,
        length: Optional[int] = None,
    ) -> bytes:
        reason = http.client.responses.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        else:
            lines.append("Transfer-Encoding: chunked")
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _send_json(
        self,
        writer,
        status: int,
        payload: Dict[str, object],
        keep_alive: bool,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        body = dump_json(payload)
        writer.write(
            self._head(status, "application/json", keep_alive, extra, len(body)) + body
        )
        await writer.drain()

    async def _send_text(
        self, writer, status: int, text: str, content_type: str, keep_alive: bool
    ) -> None:
        body = text.encode("utf-8")
        writer.write(self._head(status, content_type, keep_alive, None, len(body)) + body)
        await writer.drain()

    async def _send_error(
        self, writer, status: int, error: BaseException, keep_alive: bool
    ) -> None:
        await self._send_json(
            writer, status, error_body(error), keep_alive, retry_after_headers(error)
        )

    async def _start_stream(self, writer, content_type: str, keep_alive: bool) -> None:
        writer.write(self._head(200, content_type, keep_alive, None, None))
        await writer.drain()

    @staticmethod
    async def _write_chunk(writer, data: bytes) -> None:
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()

    @staticmethod
    async def _end_stream(writer) -> None:
        writer.write(b"0\r\n\r\n")
        await writer.drain()
