"""Named-model registry for multi-workload serving.

One :class:`~repro.serve.server.InferenceServer` can host several networks
behind a single front-end; the registry is the pre-start description of that
fleet.  Each :class:`ModelDefinition` bundles a workload (network + weights +
chip config + noise model) with its *serving* knobs — executor, flush policy,
queue bound, and the autoscaling replica range — and knows how to turn itself
into the :class:`~repro.serve.workers.EngineReplicaSpec` every replica is
built from.

Requests are routed by model name; the first registered model is the
*default*, so single-model callers (and clients that never send a ``model``
field) keep working unchanged.  Unknown names raise
:class:`~repro.errors.UnknownModelError` (HTTP 404 over the wire) naming the
hosted models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.concurrency import make_lock, thread_shared
from repro.config.chip import ChipConfig
from repro.crossbar.noise import CrossbarNoiseModel
from repro.errors import SimulationError, UnknownModelError
from repro.nn.network import Network
from repro.serve.batcher import (
    AnalyticalCostModel,
    FlushPolicy,
    make_flush_policy,
)
from repro.serve.faults import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    FaultInjector,
    FaultRule,
    parse_fault_spec,
)
from repro.serve.shm import parse_ipc_mode
from repro.serve.workers import (
    EngineReplicaSpec,
    ExecutorSpec,
    parse_executor_spec,
)


@dataclass
class ModelDefinition:
    """Everything one hosted model needs: the workload plus its serving knobs.

    ``min_replicas`` / ``max_replicas`` bound the autoscaler for this model;
    when ``None`` the server falls back to the
    :class:`~repro.serve.autoscaler.AutoscalerPolicy` defaults (and without an
    autoscaler the executor's replica count is simply fixed).
    """

    name: str
    network: Network
    weights: Dict[str, np.ndarray]
    config: Optional[ChipConfig] = None
    noise_model: Optional[CrossbarNoiseModel] = None
    seed: int = 0
    executor: Union[str, int, ExecutorSpec] = "serial"
    intra_execution: Union[str, int] = "serial"
    max_batch: int = 8
    max_wait_s: float = 0.002
    queue_capacity: int = 128
    policy: Union[str, FlushPolicy] = "fixed"
    slo_s: float = 0.05
    warmup: bool = True
    min_replicas: Optional[int] = None
    max_replicas: Optional[int] = None
    #: Per-dispatch answer budget (see ``EngineWorkerPool``); ``None`` waits
    #: forever — hung process replicas are then only caught by injection tests.
    dispatch_timeout_s: Optional[float] = None
    #: Dispatch attempts per micro-batch before ``ReplicaFailureError``.
    max_attempts: int = 3
    #: Exponential replica-restart backoff bounds.
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    #: Circuit-breaker thresholds; ``None`` disables the breaker.
    breaker: Optional[CircuitBreakerPolicy] = None
    #: Fault-injection rules (spec strings or ``FaultRule``\ s) or a prebuilt
    #: injector; ``None`` (the default) serves without any injection.
    faults: Optional[Union[FaultInjector, Sequence[Union[str, FaultRule]]]] = field(
        default=None
    )
    #: Tensor transport across the ``process`` replica boundary: ``"pickle"``
    #: (default) or ``"shm"`` (zero-copy shared-memory arena, see
    #: :mod:`repro.serve.shm`).  No effect on in-process executors.
    ipc: str = "pickle"

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise SimulationError(
                f"model name must be a non-empty string, got {self.name!r}"
            )
        self.name = self.name.strip()
        self.executor = parse_executor_spec(self.executor)
        self.ipc = parse_ipc_mode(self.ipc)
        for bound_name in ("min_replicas", "max_replicas"):
            bound = getattr(self, bound_name)
            if bound is not None and int(bound) < 1:
                raise SimulationError(f"{bound_name} must be >= 1, got {bound}")
        if (
            self.min_replicas is not None
            and self.max_replicas is not None
            and int(self.min_replicas) > int(self.max_replicas)
        ):
            raise SimulationError(
                f"min_replicas ({self.min_replicas}) must not exceed "
                f"max_replicas ({self.max_replicas})"
            )
        if self.breaker is not None and not isinstance(
            self.breaker, CircuitBreakerPolicy
        ):
            raise SimulationError(
                "breaker must be a CircuitBreakerPolicy (or None), got "
                f"{type(self.breaker).__name__}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultInjector):
            # Validate the rule spellings eagerly so a typo fails at
            # registration, not on the Nth dispatch.
            self.faults = list(self.faults)
            for rule in self.faults:
                parse_fault_spec(rule)

    @property
    def input_shape(self) -> tuple:
        return self.network.input_shape.as_tuple()

    def replica_spec(self) -> EngineReplicaSpec:
        """The serialized engine description replicas are built from."""
        warmup_image = np.zeros(self.input_shape) if self.warmup else None
        return EngineReplicaSpec(
            network=self.network,
            weights=dict(self.weights),
            config=self.config,
            noise_model=self.noise_model,
            seed=self.seed,
            execution=self.intra_execution,
            warmup_image=warmup_image,
        )

    def build_policy(self) -> FlushPolicy:
        """Build this model's flush policy (adaptive policies get a cost model)."""
        cost_model = None
        if self.policy == "adaptive":
            cost_model = AnalyticalCostModel.from_workload(
                self.network, self.weights, self.config
            )
        return make_flush_policy(
            self.policy,
            max_batch=self.max_batch,
            max_wait_s=self.max_wait_s,
            slo_s=self.slo_s,
            cost_model=cost_model,
        )

    def build_breaker(self) -> Optional[CircuitBreaker]:
        """This model's circuit breaker (``None`` when not configured)."""
        if self.breaker is None:
            return None
        return CircuitBreaker(self.breaker)

    def build_fault_injector(self) -> Optional[FaultInjector]:
        """This model's fault injector (``None`` when no rules configured)."""
        if self.faults is None:
            return None
        if isinstance(self.faults, FaultInjector):
            return self.faults
        return FaultInjector(self.faults)


@thread_shared
class ModelRegistry:
    """Ordered collection of :class:`ModelDefinition`\\ s, keyed by name.

    The first registered model is the *default*: requests that do not name a
    model route there, which is what keeps the single-model API unchanged.
    Registration and lookup are lock-protected: a registry may be mutated
    (e.g. from an admin path) while server threads resolve routes.
    """

    def __init__(self, models: Optional[Iterable[ModelDefinition]] = None) -> None:
        self._lock = make_lock("ModelRegistry._lock")
        self._models: Dict[str, ModelDefinition] = {}
        for definition in models or ():
            self.register(definition)

    # ------------------------------------------------------------------ build-up
    def register(self, definition: ModelDefinition) -> ModelDefinition:
        """Add one model; duplicate names are rejected."""
        if not isinstance(definition, ModelDefinition):
            raise SimulationError(
                f"expected a ModelDefinition, got {type(definition).__name__}"
            )
        with self._lock:
            if definition.name in self._models:
                raise SimulationError(
                    f"model {definition.name!r} is already registered"
                )
            self._models[definition.name] = definition
        return definition

    def add(
        self,
        name: str,
        network: Network,
        weights: Dict[str, np.ndarray],
        **knobs,
    ) -> ModelDefinition:
        """Convenience: build and register a definition in one call."""
        return self.register(
            ModelDefinition(name=name, network=network, weights=weights, **knobs)
        )

    # ------------------------------------------------------------------ lookup
    @property
    def default_name(self) -> str:
        """The first registered model's name (the routing default)."""
        with self._lock:
            if not self._models:
                raise SimulationError("model registry is empty")
            return next(iter(self._models))

    def names(self) -> List[str]:
        with self._lock:
            return list(self._models)

    def get(self, name: str) -> ModelDefinition:
        """Look a model up by name; unknown names raise UnknownModelError."""
        with self._lock:
            try:
                return self._models[name]
            except KeyError:
                raise UnknownModelError(
                    f"unknown model {name!r}: hosted models are "
                    f"{', '.join(sorted(self._models)) or '(none)'}"
                ) from None

    def resolve(self, name: Optional[str]) -> ModelDefinition:
        """``get(name)``, with ``None`` meaning the default model."""
        return self.get(self.default_name if name is None else name)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._models

    def __iter__(self) -> Iterator[ModelDefinition]:
        with self._lock:
            return iter(list(self._models.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)


__all__ = [
    "ModelDefinition",
    "ModelRegistry",
]
