"""Zero-copy shared-memory datapath for process engine replicas.

The process executor's one remaining per-batch cost is serialization: every
dispatch pickles the image tensor into the worker and pickles the result
back, so at serving batch sizes the `process:N` boundary pays memcpy + pickle
framing twice per batch.  This module removes that copy.  An
:class:`ShmSlotArena` preallocates one ``multiprocessing.shared_memory``
segment, partitioned into batch-shaped ring-buffer *slots*; the dispatching
parent writes a micro-batch's inputs into a free slot's numpy view, the
worker process maps the same segment and reads/writes it in place, and the
only thing that crosses the executor pipe is a :class:`SlotDescriptor` — a
two-integer control message.

Ownership model (what makes this safe rather than merely fast):

* **Slots are owned by the parent.**  The dispatch thread acquires a slot,
  writes inputs, and releases it only after the result has been copied out or
  the batch has permanently failed.  Workers never allocate or free slots, so
  a SIGKILLed worker cannot leak or corrupt slot bookkeeping.
* **The executor pipe is the happens-before edge.**  A worker writes outputs
  into the slot *before* returning its control message; the parent reads the
  slot only *after* the future resolves.  No cross-process locks are needed
  and torn reads are impossible by construction.
* **Slots outlive replica crashes.**  The inputs stay bitwise intact in the
  slot across a mid-batch SIGKILL, so supervision retries re-dispatch the
  identical bytes to the replacement replica — deterministic outputs stay
  bitwise identical to a direct ``run_batch`` even under fault injection.
* **The parent is the sole segment owner.**  Workers attach *untracked*
  (see :func:`attach_untracked`), so Python's ``resource_tracker`` never
  believes a killed worker leaked the segment; the arena unlinks it exactly
  once, at pool close.

The arena's internal lock/condition come from :mod:`repro.concurrency`, so
``REPRO_SANITIZE=1`` puts slot admission under the lock-order sanitizer like
every other serving lock.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.concurrency import make_condition, thread_shared
from repro.errors import ServeError, SimulationError

#: IPC modes understood by the serving stack.  ``pickle`` (the default)
#: serializes tensors across the executor pipe; ``shm`` moves them through a
#: shared-memory slot arena and only pickles slot descriptors.
IPC_MODES = ("pickle", "shm")

#: Default per-slot batch capacity when the caller does not size slots from
#: its own ``max_batch`` — matches the paper's batch-32 design point.
DEFAULT_SLOT_BATCH = 32

#: ``/dev/shm`` name prefix for every arena segment (leak tests scan for it).
SEGMENT_PREFIX = "repro_shm"


def parse_ipc_mode(value: str) -> str:
    """Validate an ``--ipc`` spelling; returns the canonical mode string."""
    if isinstance(value, str) and value.strip() in IPC_MODES:
        return value.strip()
    raise SimulationError(
        f"ipc mode must be one of {IPC_MODES}, got {value!r}"
    )


@dataclass(frozen=True)
class SlotDescriptor:
    """The control message that replaces a pickled tensor payload.

    ``index`` names the slot, ``batch`` the number of occupied rows (a batch
    smaller than the slot's capacity uses a prefix of it).  This is all a
    worker needs to locate the inputs and all the parent needs to read the
    outputs back.
    """

    index: int
    batch: int


@dataclass(frozen=True)
class ArenaLayout:
    """Geometry of one arena — everything a worker needs to map the segment.

    The segment is a flat float64 array of ``slots`` equal slots; each slot
    is an input region of ``slot_batch`` images followed by an output region
    of ``slot_batch`` result rows.  The layout pickles into worker
    initializers (it is tiny), and both sides derive their numpy views from
    it, so parent and worker can never disagree about offsets.
    """

    name: str
    slots: int
    slot_batch: int
    input_shape: Tuple[int, ...]
    output_size: int

    @property
    def input_elements(self) -> int:
        """Float64 elements in one slot's input region."""
        return self.slot_batch * int(np.prod(self.input_shape, dtype=np.int64))

    @property
    def output_elements(self) -> int:
        """Float64 elements in one slot's output region."""
        return self.slot_batch * self.output_size

    @property
    def slot_elements(self) -> int:
        return self.input_elements + self.output_elements

    @property
    def total_bytes(self) -> int:
        return self.slots * self.slot_elements * np.dtype(np.float64).itemsize

    def slot_views(self, buffer, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """(inputs, outputs) numpy views of slot ``index`` over ``buffer``.

        The views alias the shared segment — no bytes are copied.  ``inputs``
        has shape ``(slot_batch, *input_shape)``; ``outputs`` has shape
        ``(slot_batch, output_size)``.
        """
        if not 0 <= index < self.slots:
            raise ServeError(f"slot index {index} out of range [0, {self.slots})")
        flat = np.ndarray(
            (self.slot_elements,),
            dtype=np.float64,
            buffer=buffer,
            offset=index * self.slot_elements * np.dtype(np.float64).itemsize,
        )
        inputs = flat[: self.input_elements].reshape(
            (self.slot_batch,) + tuple(self.input_shape)
        )
        outputs = flat[self.input_elements :].reshape(
            (self.slot_batch, self.output_size)
        )
        return inputs, outputs


def attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    The arena's parent process owns the segment's lifetime; if workers
    registered their attachments, every SIGKILLed replica would make the
    tracker print spurious "leaked shared_memory" warnings at exit (and, on
    some Python versions, unlink a segment that is still live).  Python 3.13
    exposes ``track=False`` for exactly this; on older versions the tracker
    registration hook is stubbed out for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: SharedMemory has no track= parameter
        original_register = resource_tracker.register

        def _skip_shared_memory(target, rtype):
            if rtype != "shared_memory":
                original_register(target, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


@thread_shared
class ShmSlotArena:
    """A parent-owned ring of shared-memory batch slots.

    ``slots`` bounds how many micro-batches can be in flight through the
    segment at once (the worker pool sizes it to ``max_count``, its dispatch
    concurrency, so admission never deadlocks).  ``resize`` narrows or widens
    the number of concurrently *acquirable* slots without reallocating the
    segment — shrinking below the current occupancy is allowed and simply
    stops admitting new batches until enough slots drain.

    Invariants (the property test in ``tests/test_shm_datapath.py`` drives
    randomized acquire/release/resize sequences against them):

    * a slot has at most one owner — ``acquire`` hands out each index at most
      once until it is ``release``d;
    * slots are never lost — free + in-use always partitions ``range(slots)``;
    * a drained arena is fully free.
    """

    def __init__(
        self,
        slot_batch: int,
        input_shape: Tuple[int, ...],
        output_size: int,
        slots: int,
    ) -> None:
        if slots < 1:
            raise SimulationError(f"arena needs >= 1 slot, got {slots}")
        if slot_batch < 1:
            raise SimulationError(f"slot_batch must be >= 1, got {slot_batch}")
        if output_size < 1:
            raise SimulationError(f"output_size must be >= 1, got {output_size}")
        name = f"{SEGMENT_PREFIX}_{os.getpid()}_{os.urandom(4).hex()}"
        self.layout = ArenaLayout(
            name=name,
            slots=int(slots),
            slot_batch=int(slot_batch),
            input_shape=tuple(int(d) for d in input_shape),
            output_size=int(output_size),
        )
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=self.layout.total_bytes
        )
        self._cond = make_condition("ShmSlotArena._cond")
        self._free = list(range(self.layout.slots - 1, -1, -1))  # LIFO: pop() -> 0 first
        self._in_use: set = set()
        self._limit = self.layout.slots
        self._closed = False
        # Telemetry (all guarded by _cond): how much pickling the arena saved
        # and how full it runs.
        self._copy_bytes_avoided = 0
        self._acquires = 0
        self._releases = 0
        self._high_water = 0
        self._fallbacks = 0

    # ------------------------------------------------------------------ admission
    def acquire(self, timeout_s: Optional[float] = None) -> Optional[int]:
        """Check out a free slot index; ``None`` on timeout or closed arena.

        Blocks while every admissible slot is in use.  ``timeout_s=0`` is a
        non-blocking try-acquire (the property test's probe).
        """
        with self._cond:
            if not self._cond.wait_for(self._admissible_locked, timeout=timeout_s):
                return None
            if self._closed:
                return None
            index = self._free.pop()
            self._in_use.add(index)
            self._acquires += 1
            self._high_water = max(self._high_water, len(self._in_use))
            return index

    def _admissible_locked(self) -> bool:
        return self._closed or (
            bool(self._free) and len(self._in_use) < self._limit
        )

    def release(self, index: int) -> None:
        """Return a slot to the free ring (its contents become reusable)."""
        with self._cond:
            if index not in self._in_use:
                raise ServeError(
                    f"slot {index} released without being acquired (double release?)"
                )
            self._in_use.discard(index)
            self._free.append(index)
            self._releases += 1
            self._cond.notify_all()

    def resize(self, limit: int) -> int:
        """Clamp the number of concurrently acquirable slots to ``limit``.

        Returns the applied limit (clamped into ``[1, slots]``).  The segment
        itself never moves or reallocates, so live views stay valid.
        """
        with self._cond:
            self._limit = max(1, min(int(limit), self.layout.slots))
            self._cond.notify_all()
            return self._limit

    # ------------------------------------------------------------------ datapath
    def fits(self, images: np.ndarray) -> bool:
        """Whether a batch fits one slot (shape- and capacity-wise)."""
        shape = np.asarray(images).shape
        return (
            len(shape) == len(self.layout.input_shape) + 1
            and 0 < shape[0] <= self.layout.slot_batch
            and tuple(shape[1:]) == self.layout.input_shape
        )

    def write_inputs(self, index: int, images: np.ndarray) -> SlotDescriptor:
        """Copy a batch into slot ``index``; returns its descriptor.

        This is the *single* input copy in shm mode (host array -> shared
        segment); the worker reads the segment in place.  The caller must own
        ``index`` via :meth:`acquire`.
        """
        images = np.asarray(images, dtype=np.float64)
        if not self.fits(images):
            raise ServeError(
                f"batch of shape {images.shape} does not fit a "
                f"{self.layout.slot_batch} x {self.layout.input_shape} slot"
            )
        inputs, _ = self.layout.slot_views(self._shm.buf, index)
        batch = int(images.shape[0])
        inputs[:batch] = images
        with self._cond:
            self._copy_bytes_avoided += int(images.nbytes)
        return SlotDescriptor(index=index, batch=batch)

    def read_outputs(self, slot: SlotDescriptor) -> np.ndarray:
        """Copy the worker-written result rows out of ``slot``.

        The returned array is private to the caller, so releasing the slot
        (and a later batch overwriting it) cannot alias served results.
        """
        _, outputs = self.layout.slot_views(self._shm.buf, slot.index)
        result = np.array(outputs[: slot.batch], copy=True)
        with self._cond:
            self._copy_bytes_avoided += int(result.nbytes)
        return result

    def record_fallback(self) -> None:
        """Count a dispatch that had to take the pickle path (oversized batch)."""
        with self._cond:
            self._fallbacks += 1

    # ------------------------------------------------------------------ telemetry
    def snapshot(self) -> Dict[str, object]:
        with self._cond:
            return {
                "segment": self.layout.name,
                "slots": self.layout.slots,
                "slot_batch": self.layout.slot_batch,
                "slot_limit": self._limit,
                "slots_in_use": len(self._in_use),
                "slot_high_water": self._high_water,
                "slot_acquires": self._acquires,
                "slot_releases": self._releases,
                "copy_bytes_avoided": self._copy_bytes_avoided,
                "pickle_fallbacks": self._fallbacks,
            }

    @property
    def fully_free(self) -> bool:
        """True when every slot has been released (the drain invariant)."""
        with self._cond:
            return not self._in_use and len(self._free) == self.layout.slots

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Unmap and unlink the segment (idempotent).

        The parent is the sole owner: close wakes every blocked ``acquire``
        (they return ``None``), unmaps this process's view, and unlinks the
        backing file so ``/dev/shm`` holds nothing after a clean shutdown, a
        SIGTERM drain, or a chaos-lane worker kill.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - unlinked out of band
            pass

    def __enter__(self) -> "ShmSlotArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
