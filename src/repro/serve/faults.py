"""Deterministic fault injection and circuit breaking for the serving tier.

Two independent pieces live here, both pure control-plane logic with no
threads of their own:

:class:`FaultInjector`
    A seeded, deterministic source of *replica faults*.  The worker pool asks
    it once per dispatch (``next_action()``); almost always the answer is
    ``None`` and the hot path pays one counter increment.  When a
    :class:`FaultRule` matches the dispatch index, the returned
    :class:`FaultAction` is carried into the replica and *genuinely* applied
    there: a ``crash`` SIGKILLs the worker process mid-batch, ``hang`` stalls
    it past the dispatch timeout, ``slow`` adds latency, and ``corrupt``
    NaN-poisons the outputs (which the pool's validation then catches).
    Because rules trigger on a shared dispatch counter — not wall clock or
    PIDs — a chaos test replays the exact same fault schedule every run.

:class:`CircuitBreaker`
    The classic closed → open → half-open state machine over a rolling
    window of batch outcomes.  The server consults ``allow()`` at admission:
    an open breaker sheds requests as
    :class:`~repro.errors.CircuitOpenError` (HTTP 503 + ``Retry-After``)
    instead of queueing work a sick model cannot serve.  After
    ``recovery_s`` the breaker half-opens and lets a probe trickle through;
    ``half_open_successes`` clean batches close it again, one failure snaps
    it back open.  The clock is injectable so every transition is testable
    without sleeping.

Fault rules have a CLI spelling (``--inject-fault``), parsed by
:func:`parse_fault_spec`::

    crash:every=5            SIGKILL the serving replica on every 5th dispatch
    hang:at=3                dispatch 3 never answers (parent times it out)
    slow:every=2,delay_ms=20 every 2nd dispatch takes an extra 20 ms
    corrupt:at=7,times=1     dispatch 7 returns NaN-poisoned outputs, once
    crash:probability=0.1,seed=7   seeded Bernoulli instead of a fixed index
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.concurrency import make_lock, thread_shared
from repro.errors import SimulationError

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultRule",
    "FaultInjector",
    "parse_fault_spec",
    "CircuitBreakerPolicy",
    "CircuitBreaker",
]

#: Fault kinds a rule can inject.
FAULT_KINDS = ("crash", "hang", "slow", "corrupt")

#: Default extra latency of a ``slow`` fault (seconds).
DEFAULT_SLOW_DELAY_S = 0.05

#: Default stall of a ``hang`` fault (seconds) — far past any sane dispatch
#: timeout, so the parent-side timeout (not the sleep) ends the batch.
DEFAULT_HANG_DELAY_S = 60.0


@dataclass(frozen=True)
class FaultAction:
    """One concrete fault to apply to one dispatch.

    Plain data (kind + delay), so it pickles into process workers — the
    fault is applied *inside* the replica, which is what makes an injected
    crash indistinguishable from a real one to the supervision layer.
    """

    kind: str
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.delay_s < 0:
            raise SimulationError(f"fault delay must be >= 0, got {self.delay_s}")


@dataclass
class FaultRule:
    """When to fire one kind of fault, in dispatch-counter terms.

    Exactly one trigger must be set: ``every`` (periodic, 1-based — every
    Nth dispatch), ``at`` (a single dispatch index) or ``probability``
    (seeded Bernoulli per dispatch).  ``times`` caps total firings
    (``None`` = unlimited); ``delay_s`` parameterises ``slow``/``hang``.
    """

    kind: str
    every: Optional[int] = None
    at: Optional[int] = None
    probability: Optional[float] = None
    delay_s: Optional[float] = None
    times: Optional[int] = None
    seed: int = 0
    fired: int = field(default=0, init=False)
    _rng: Optional[random.Random] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SimulationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        triggers = [
            name
            for name in ("every", "at", "probability")
            if getattr(self, name) is not None
        ]
        if len(triggers) != 1:
            raise SimulationError(
                "a fault rule needs exactly one trigger out of 'every', 'at' "
                f"and 'probability', got {triggers or 'none'}"
            )
        if self.every is not None and int(self.every) < 1:
            raise SimulationError(f"'every' must be >= 1, got {self.every}")
        if self.at is not None and int(self.at) < 1:
            raise SimulationError(f"'at' must be >= 1, got {self.at}")
        if self.probability is not None and not (0.0 < float(self.probability) <= 1.0):
            raise SimulationError(
                f"'probability' must be in (0, 1], got {self.probability}"
            )
        if self.times is not None and int(self.times) < 1:
            raise SimulationError(f"'times' must be >= 1, got {self.times}")
        if self.delay_s is not None and float(self.delay_s) < 0:
            raise SimulationError(f"'delay_s' must be >= 0, got {self.delay_s}")
        if self.probability is not None:
            self._rng = random.Random(self.seed)
        if self.at is not None:
            # A fixed index can only ever fire once.
            self.times = 1 if self.times is None else min(int(self.times), 1)

    def matches(self, dispatch_index: int) -> bool:
        """Whether this rule fires on the 1-based ``dispatch_index``."""
        if self.times is not None and self.fired >= self.times:
            return False
        if self.every is not None:
            return dispatch_index % int(self.every) == 0
        if self.at is not None:
            return dispatch_index == int(self.at)
        assert self._rng is not None
        return self._rng.random() < float(self.probability)

    def action(self) -> FaultAction:
        """The concrete action this rule injects (defaults filled per kind)."""
        delay = self.delay_s
        if delay is None:
            delay = {
                "slow": DEFAULT_SLOW_DELAY_S,
                "hang": DEFAULT_HANG_DELAY_S,
            }.get(self.kind, 0.0)
        return FaultAction(kind=self.kind, delay_s=float(delay))


def parse_fault_spec(spec: Union[str, FaultRule]) -> FaultRule:
    """Parse one ``--inject-fault`` spelling into a :class:`FaultRule`.

    Grammar: ``KIND[:key=value[,key=value...]]`` with keys ``every``, ``at``,
    ``probability``, ``delay_ms``, ``times`` and ``seed``.  A bare ``KIND``
    means ``every=1`` (fire on every dispatch).
    """
    if isinstance(spec, FaultRule):
        return spec
    if not isinstance(spec, str) or not spec.strip():
        raise SimulationError(f"invalid fault spec {spec!r}: expected a string")
    text = spec.strip()
    kind, _, suffix = text.partition(":")
    kind = kind.strip()
    if kind not in FAULT_KINDS:
        raise SimulationError(
            f"invalid fault spec {spec!r}: kind must be one of {FAULT_KINDS}"
        )
    knobs: Dict[str, float] = {}
    if suffix.strip():
        for item in suffix.split(","):
            key, separator, value = item.partition("=")
            key = key.strip()
            if not separator or not value.strip():
                raise SimulationError(
                    f"invalid fault spec {spec!r}: expected key=value, got {item!r}"
                )
            if key not in ("every", "at", "probability", "delay_ms", "times", "seed"):
                raise SimulationError(
                    f"invalid fault spec {spec!r}: unknown key {key!r} (expected "
                    "every, at, probability, delay_ms, times or seed)"
                )
            try:
                knobs[key] = float(value.strip())
            except ValueError:
                raise SimulationError(
                    f"invalid fault spec {spec!r}: {key}={value.strip()!r} "
                    "is not a number"
                ) from None
    if not any(key in knobs for key in ("every", "at", "probability")):
        knobs["every"] = 1.0
    return FaultRule(
        kind=kind,
        every=int(knobs["every"]) if "every" in knobs else None,
        at=int(knobs["at"]) if "at" in knobs else None,
        probability=knobs.get("probability"),
        delay_s=knobs["delay_ms"] / 1e3 if "delay_ms" in knobs else None,
        times=int(knobs["times"]) if "times" in knobs else None,
        seed=int(knobs.get("seed", 0)),
    )


class FaultInjector:
    """Seeded, deterministic fault source one worker pool consults per dispatch.

    Thread-safe: dispatch threads race on ``next_action()``, which assigns
    each caller a unique 1-based dispatch index under a lock and evaluates
    the rules in registration order (first match wins).  With no rules —
    the production default — the pool skips the injector entirely, so the
    no-fault path pays nothing.
    """

    def __init__(
        self, rules: Optional[Iterable[Union[str, FaultRule]]] = None
    ) -> None:
        self.rules: List[FaultRule] = [parse_fault_spec(rule) for rule in rules or ()]
        self._lock = make_lock("FaultInjector._lock")
        self._dispatches = 0
        self._injected: Counter = Counter()

    def next_action(self) -> Optional[FaultAction]:
        """Advance the dispatch counter; return the fault to inject, if any."""
        with self._lock:
            self._dispatches += 1
            index = self._dispatches
            for rule in self.rules:
                if rule.matches(index):
                    rule.fired += 1
                    self._injected[rule.kind] += 1
                    return rule.action()
        return None

    @property
    def dispatches(self) -> int:
        with self._lock:
            return self._dispatches

    def snapshot(self) -> Dict[str, object]:
        """Injection counters for telemetry (kind → times fired)."""
        with self._lock:
            return {
                "dispatches": self._dispatches,
                "injected": dict(sorted(self._injected.items())),
                "rules": len(self.rules),
            }


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

#: Circuit breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Tunable thresholds of the per-model circuit breaker.

    The breaker opens when, over the last ``window`` batch outcomes (with at
    least ``min_samples`` recorded), the failure fraction reaches
    ``failure_threshold``.  While open, admissions are shed for
    ``recovery_s``; the breaker then half-opens and ``half_open_successes``
    consecutive clean batches close it again (any failure re-opens it and
    restarts the recovery clock).
    """

    failure_threshold: float = 0.5
    window: int = 8
    min_samples: int = 2
    recovery_s: float = 5.0
    half_open_successes: int = 2

    def __post_init__(self) -> None:
        if not (0.0 < self.failure_threshold <= 1.0):
            raise SimulationError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        if self.window < 1:
            raise SimulationError(f"window must be >= 1, got {self.window}")
        if not (1 <= self.min_samples <= self.window):
            raise SimulationError(
                f"min_samples must be in [1, window={self.window}], "
                f"got {self.min_samples}"
            )
        if self.recovery_s < 0:
            raise SimulationError(f"recovery_s must be >= 0, got {self.recovery_s}")
        if self.half_open_successes < 1:
            raise SimulationError(
                f"half_open_successes must be >= 1, got {self.half_open_successes}"
            )


@thread_shared
class CircuitBreaker:
    """Closed → open → half-open failure-rate breaker with injectable clock."""

    def __init__(
        self,
        policy: Optional[CircuitBreakerPolicy] = None,
        clock=time.monotonic,
    ) -> None:
        self.policy = policy or CircuitBreakerPolicy()
        self._clock = clock
        self._lock = make_lock("CircuitBreaker._lock")
        self._state = BREAKER_CLOSED
        self._outcomes: List[bool] = []  # rolling window, True = success
        self._opened_at: Optional[float] = None
        self._half_open_streak = 0
        self._times_opened = 0
        self._rejections = 0

    # ------------------------------------------------------------------ admission
    def allow(self) -> bool:
        """Whether one request may be admitted right now.

        Transitions open → half-open when the recovery window has elapsed.
        A rejected admission is counted (the ``rejections`` telemetry).
        """
        with self._lock:
            if self._state == BREAKER_OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at >= self.policy.recovery_s:
                    self._state = BREAKER_HALF_OPEN
                    self._half_open_streak = 0
                else:
                    self._rejections += 1
                    return False
            return True

    def retry_after_s(self) -> float:
        """Seconds until the breaker would half-open (0 when not open)."""
        with self._lock:
            if self._state != BREAKER_OPEN or self._opened_at is None:
                return 0.0
            remaining = self.policy.recovery_s - (self._clock() - self._opened_at)
            return max(0.0, remaining)

    # ------------------------------------------------------------------ outcomes
    def record_success(self) -> None:
        with self._lock:
            self._push_locked(True)
            if self._state == BREAKER_HALF_OPEN:
                self._half_open_streak += 1
                if self._half_open_streak >= self.policy.half_open_successes:
                    self._state = BREAKER_CLOSED
                    self._outcomes.clear()
                    self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            self._push_locked(False)
            if self._state == BREAKER_HALF_OPEN:
                self._trip_locked()
                return
            if self._state == BREAKER_CLOSED:
                samples = len(self._outcomes)
                failures = samples - sum(self._outcomes)
                if (
                    samples >= self.policy.min_samples
                    and failures / samples >= self.policy.failure_threshold
                ):
                    self._trip_locked()

    def _push_locked(self, success: bool) -> None:
        self._outcomes.append(success)
        if len(self._outcomes) > self.policy.window:
            del self._outcomes[: len(self._outcomes) - self.policy.window]

    def _trip_locked(self) -> None:
        self._state = BREAKER_OPEN
        self._opened_at = self._clock()
        self._times_opened += 1
        self._half_open_streak = 0

    # ------------------------------------------------------------------ state
    @property
    def state(self) -> str:
        with self._lock:
            # Surface the lapsed-recovery transition without requiring an
            # admission attempt first.
            if (
                self._state == BREAKER_OPEN
                and self._opened_at is not None
                and self._clock() - self._opened_at >= self.policy.recovery_s
            ):
                return BREAKER_HALF_OPEN
            return self._state

    def snapshot(self) -> Dict[str, object]:
        state = self.state
        with self._lock:
            samples = len(self._outcomes)
            failures = samples - sum(self._outcomes)
            return {
                "state": state,
                "window_samples": samples,
                "window_failures": failures,
                "failure_rate": failures / samples if samples else 0.0,
                "times_opened": self._times_opened,
                "rejections": self._rejections,
                "retry_after_s": (
                    max(
                        0.0,
                        self.policy.recovery_s - (self._clock() - self._opened_at),
                    )
                    if self._state == BREAKER_OPEN and self._opened_at is not None
                    else 0.0
                ),
            }

    def register_metrics(self, registry, labels: Optional[Dict[str, str]] = None) -> None:
        """Export breaker state into a :class:`repro.obs.MetricsRegistry`.

        ``repro_breaker_state`` encodes closed=0, half-open=1, open=2 so a
        dashboard can alert on any non-zero value.
        """
        label_set = dict(labels or {})
        state_codes = {BREAKER_CLOSED: 0.0, BREAKER_HALF_OPEN: 1.0, BREAKER_OPEN: 2.0}

        def _collect():
            snap = self.snapshot()
            return [
                {
                    "name": "repro_breaker_state",
                    "type": "gauge",
                    "help": "Circuit breaker state (0=closed, 1=half-open, 2=open).",
                    "samples": [(label_set, state_codes.get(snap["state"], 2.0))],
                },
                {
                    "name": "repro_breaker_times_opened_total",
                    "type": "counter",
                    "help": "Times the circuit breaker tripped open.",
                    "samples": [(label_set, float(snap["times_opened"]))],
                },
                {
                    "name": "repro_breaker_rejections_total",
                    "type": "counter",
                    "help": "Admissions shed while the breaker was open.",
                    "samples": [(label_set, float(snap["rejections"]))],
                },
            ]

        registry.register_collector(_collect)
