"""HTTP front-ends and client for the online inference server.

Two front-ends speak the same ``/v1`` API over one
:class:`~repro.serve.server.InferenceServer`:

* :class:`~repro.serve.http_async.AsyncServeHTTPServer` (the default) — a
  single-event-loop asyncio front-end multiplexing thousands of keep-alive
  connections, with NDJSON streaming responses and SSE progress (see
  ``repro.serve.http_async``);
* :class:`ServeHTTPServer` (this module) — the legacy stdlib
  :class:`~http.server.ThreadingHTTPServer`, one handler thread per
  connection, kept one release as a ``--legacy-http`` fallback.

Both funnel every request through the *same* ``submit()`` path in-process
callers use, so in-order delivery and bitwise determinism are preserved:
the HTTP layer only encodes and decodes payloads.  The shared route table
(:data:`API_ROUTES`), payload codecs and request/submission helpers in this
module are what keep the two front-ends byte-for-byte compatible — and what
``docs/http-api.md`` is checked against by the docs-freshness test.

Endpoints
---------
``POST /v1/infer``
    One single-image request (``{"image": ...}``) or a batch
    (``{"images": ...}``).  Payloads are either nested JSON lists or
    base64-encoded ``.npy`` blobs (``image_npy_b64`` / ``images_npy_b64``),
    which round-trip float64 bits exactly and are ~3x denser than JSON.
    An optional ``{"model": name}`` field routes to one of the server's
    hosted models (absent → the default model, preserving the single-model
    API); unknown names are a 404.  ``{"block": false}`` turns queue
    overflow into an HTTP 429 with a ``Retry-After`` backpressure hint
    instead of blocking the connection (open-loop shedding over the wire).
    On the async front-end ``{"stream": true}`` switches the response to
    chunked newline-delimited JSON (one item per line as the re-order
    buffer releases it) and ``{"request_id": "..."}`` names the request so
    its progress can be followed over SSE.
``GET /v1/infer/{request_id}/events``
    Server-sent-events progress for a named in-flight request (async
    front-end only; 404 on the legacy server).
``GET /v1/models``
    The hosted-model listing: name, network, input shape, executor, current
    replica count and autoscaling bounds per model, plus the default name.
``GET /v1/stats``
    The server's :meth:`~repro.serve.server.InferenceServer.stats` snapshot —
    SLO telemetry, flush-policy state, replica-pool counters and a
    ``models`` section covering every hosted model — as JSON.
    ``GET /v1/stats?model=NAME`` narrows to one model (404 when unknown).
``GET /metrics``
    Prometheus text exposition (format 0.0.4) of the server's unified
    :class:`~repro.obs.metrics.MetricsRegistry` — serving telemetry,
    replica-pool and accelerator counters, breaker state, tracer health.
``GET /v1/trace/{trace_id}``
    One finished (or in-flight) request trace as JSON: the span tree plus
    the per-stage duration breakdown.  Unknown or evicted ids are a 404.
``GET /healthz``
    Liveness probe: workload name, input shape, executor, hosted models,
    uptime.
``POST /v1/shutdown``
    Requests a clean shutdown; only honoured when the front-end was built
    with ``allow_shutdown=True`` (404 otherwise, so probes cannot kill a
    server that did not opt in).

Error mapping: malformed payloads → 400, queue overflow → 429, server not
running → 503, unknown path or model → 404, wrong method → 405.  Every
error body is ``{"error": msg, "type": ExceptionName}``.

:class:`HTTPInferenceClient` is the matching stdlib-only client.  It exposes
the same ``submit()/stats()`` surface as :class:`InferenceServer`, so a
:class:`~repro.serve.loadgen.LoadGenerator` can drive a remote server over
HTTP unchanged (``python -m repro loadgen --url ...``).
"""

from __future__ import annotations

import base64
import http.client
import io
import json
import random
import threading
import time
import urllib.parse
from concurrent.futures import Future, ThreadPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from repro.concurrency import make_lock
from repro.errors import (
    BadRequestError,
    CircuitOpenError,
    QueueOverflowError,
    RequestTimeoutError,
    ServeError,
    UnknownModelError,
)
from repro.obs.metrics import PROMETHEUS_CONTENT_TYPE
from repro.serve.server import InferenceServer

#: Default bind host; loopback so a bare ``--http`` never exposes a socket.
DEFAULT_HOST = "127.0.0.1"

#: Largest accepted request body (a 64 MB batch is ~2000 LeNet images).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Payload encodings understood by the client (the server accepts both).
ENCODINGS = ("json", "npy_b64")

#: The complete serving API: ``(method, route template)`` pairs.  Both
#: front-ends register exactly these routes, ``docs/http-api.md`` documents
#: exactly these routes, and ``tests/test_docs.py`` diffs the two — so the
#: endpoint reference cannot drift from the implementation.  The SSE events
#: route is answered only by the async front-end (404 on the legacy one);
#: ``POST /v1/shutdown`` only when the front-end opted in.
API_ROUTES = (
    ("GET", "/healthz"),
    ("GET", "/metrics"),
    ("GET", "/v1/models"),
    ("GET", "/v1/stats"),
    ("GET", "/v1/trace/{trace_id}"),
    ("GET", "/v1/infer/{request_id}/events"),
    ("POST", "/v1/infer"),
    ("POST", "/v1/shutdown"),
)


# ---------------------------------------------------------------------------
# payload codecs (shared by server and client)
# ---------------------------------------------------------------------------


def encode_array_b64(array: np.ndarray) -> str:
    """Base64 ``.npy`` serialization of an array (bitwise-exact transport)."""
    buffer = io.BytesIO()
    np.save(buffer, np.asarray(array))
    return base64.b64encode(buffer.getvalue()).decode("ascii")


def decode_array_b64(text: str) -> np.ndarray:
    """Inverse of :func:`encode_array_b64`; malformed input → 400."""
    try:
        raw = base64.b64decode(text, validate=True)
        return np.load(io.BytesIO(raw), allow_pickle=False)
    except Exception as error:
        raise BadRequestError(f"invalid base64 .npy payload: {error}") from error


def decode_infer_payload(
    payload: object, input_shape: Tuple[int, ...]
) -> Tuple[np.ndarray, bool, str]:
    """Decode a ``POST /v1/infer`` body into a validated image batch.

    Returns ``(images, batched, encoding)`` where ``images`` always has shape
    ``(B,) + input_shape``, ``batched`` says whether the caller sent a batch
    (and so expects a batch response), and ``encoding`` is the payload field
    family used (``"json"`` or ``"npy_b64"``) so the response can mirror it.
    """
    if not isinstance(payload, dict):
        raise BadRequestError("request body must be a JSON object")
    fields = [
        key
        for key in ("image", "images", "image_npy_b64", "images_npy_b64")
        if key in payload
    ]
    if len(fields) != 1:
        raise BadRequestError(
            "request must carry exactly one of 'image', 'images', "
            f"'image_npy_b64' or 'images_npy_b64', got {fields or 'none'}"
        )
    field = fields[0]
    encoding = "npy_b64" if field.endswith("_npy_b64") else "json"
    batched = field.startswith("images")
    if encoding == "npy_b64":
        array = decode_array_b64(payload[field])
    else:
        try:
            array = np.asarray(payload[field], dtype=float)
        except (TypeError, ValueError) as error:
            raise BadRequestError(f"{field!r} is not a numeric array: {error}") from error
    if array.dtype == object:
        raise BadRequestError(f"{field!r} is not a rectangular numeric array")
    array = np.asarray(array, dtype=float)
    if not batched:
        array = array[None]
    expected_ndim = 1 + len(input_shape)
    if array.ndim != expected_ndim or array.shape[1:] != tuple(input_shape):
        raise BadRequestError(
            f"{field!r} must decode to shape "
            f"{'(batch, ' if batched else '('}"
            f"{', '.join(map(str, input_shape))}), got {array[0].shape if not batched else array.shape}"
        )
    if batched and array.shape[0] < 1:
        raise BadRequestError("'images' batch must contain at least one image")
    return array, batched, encoding


def _json_default(value):
    """JSON fallback for numpy scalars/arrays inside stats payloads."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return float(value)


def dump_json(payload: object) -> bytes:
    """The one JSON serialization both front-ends use for response bodies."""
    return json.dumps(payload, default=_json_default).encode("utf-8")


# ---------------------------------------------------------------------------
# shared request handling (used by both front-ends)
# ---------------------------------------------------------------------------


class InferRequest:
    """A validated ``POST /v1/infer`` body, front-end independent."""

    __slots__ = (
        "model",
        "images",
        "batched",
        "encoding",
        "block",
        "timeout",
        "stream",
        "request_id",
    )

    def __init__(self, model, images, batched, encoding, block, timeout, stream, request_id):
        self.model = model
        self.images = images
        self.batched = batched
        self.encoding = encoding
        self.block = block
        self.timeout = timeout
        self.stream = stream
        self.request_id = request_id


def parse_infer_request(
    payload: object, server: InferenceServer, allow_stream: bool = False
) -> InferRequest:
    """Validate a ``POST /v1/infer`` payload against ``server``'s models.

    Raises :class:`BadRequestError` on malformed fields and
    :class:`UnknownModelError` for unknown model names (the model resolves
    first, so unknown names 404 before shape validation — which depends on
    the model's input shape).  ``allow_stream`` gates the ``stream`` field:
    only the async front-end can actually stream, so the legacy server
    rejects it explicitly instead of silently ignoring it.
    """
    model = None
    if isinstance(payload, dict) and "model" in payload:
        model = payload["model"]
        if not isinstance(model, str):
            raise BadRequestError(f"'model' must be a JSON string, got {model!r}")
    input_shape = server.input_shape(model)
    images, batched, encoding = decode_infer_payload(payload, input_shape)
    block = payload.get("block", True)
    if not isinstance(block, bool):
        raise BadRequestError(f"'block' must be a JSON boolean, got {block!r}")
    timeout = payload.get("timeout_s")
    if timeout is not None and (
        isinstance(timeout, bool) or not isinstance(timeout, (int, float))
    ):
        raise BadRequestError(f"'timeout_s' must be a JSON number, got {timeout!r}")
    stream = payload.get("stream", False)
    if not isinstance(stream, bool):
        raise BadRequestError(f"'stream' must be a JSON boolean, got {stream!r}")
    if stream and not allow_stream:
        raise BadRequestError(
            "'stream' responses require the async front-end "
            "(serve --http without --legacy-http)"
        )
    request_id = payload.get("request_id")
    if request_id is not None and (not isinstance(request_id, str) or not request_id):
        raise BadRequestError(
            f"'request_id' must be a non-empty JSON string, got {request_id!r}"
        )
    return InferRequest(model, images, batched, encoding, block, timeout, stream, request_id)


def submit_images(server: InferenceServer, request: InferRequest) -> list:
    """Admit every image of ``request`` via ``server.submit``; returns futures.

    Only passes ``model=`` when the request named one: ``submit()`` may be
    wrapped (tests spy on it, middleware may decorate it) with the narrower
    pre-multi-model signature, and default-model requests should not require
    the wrapper to grow a kwarg it never uses.

    On queue overflow, part of the batch may already be admitted; those
    requests are waited out so the engine work completes and telemetry stays
    consistent, then the overflow is re-raised with the admitted count and a
    ``retry_after_s`` backpressure hint (the 429 response's ``Retry-After``).
    """
    futures = []
    overflow = None
    submit_kwargs = {} if request.model is None else {"model": request.model}
    for image in request.images:
        try:
            futures.append(
                server.submit(
                    image, block=request.block, timeout=request.timeout, **submit_kwargs
                )
            )
        except QueueOverflowError as error:
            overflow = error
            break
    if overflow is None:
        return futures
    for future in futures:
        try:
            future.result()
        except Exception:  # repro: noqa[RPR105] - draining
            pass  # already-admitted work; the overflow itself is
            # reported to the client right below
    rejection = QueueOverflowError(
        f"{overflow} ({len(futures)} of {len(request.images)} images "
        "admitted and executed before overflow)"
    )
    hint = getattr(server, "admission_retry_after_s", None)
    if hint is not None:
        rejection.retry_after_s = float(hint(request.model))  # type: ignore[attr-defined]
    raise rejection


def infer_response_body(
    outputs: np.ndarray, request: InferRequest, latency_ms: float
) -> Dict[str, object]:
    """The non-streamed ``POST /v1/infer`` response body (both front-ends)."""
    body: Dict[str, object] = {"count": int(outputs.shape[0]), "latency_ms": latency_ms}
    if request.model is not None:
        body["model"] = request.model
    if request.request_id is not None:
        body["request_id"] = request.request_id
    if request.encoding == "npy_b64":
        key = "outputs_npy_b64" if request.batched else "output_npy_b64"
        body[key] = encode_array_b64(outputs if request.batched else outputs[0])
    elif request.batched:
        body["outputs"] = outputs.tolist()
    else:
        body["output"] = outputs[0].tolist()
    return body


def stream_item_body(index: int, output: np.ndarray, encoding: str) -> Dict[str, object]:
    """One NDJSON line of a streamed response.

    The per-item encoding mirrors the non-streamed body exactly — the same
    ``encode_array_b64`` / ``tolist()`` serialization of the same output row
    — so streamed and non-streamed responses byte-compare equal item-wise.
    """
    if encoding == "npy_b64":
        return {"index": int(index), "output_npy_b64": encode_array_b64(output)}
    return {"index": int(index), "output": output.tolist()}


def status_for_error(error: BaseException) -> int:
    """The serve exception hierarchy → HTTP status mapping (both front-ends)."""
    if isinstance(error, QueueOverflowError):
        return 429
    if isinstance(error, BadRequestError):
        return 400
    if isinstance(error, UnknownModelError):
        return 404  # the model name addresses a resource, like a path
    if isinstance(error, ServeError):
        # Includes CircuitOpenError: breaker shed-load is 503 with a
        # Retry-After header (see retry_after_headers), like lifecycle errors.
        return 503
    return 500


def error_body(error: BaseException) -> Dict[str, object]:
    """Every error response body is ``{"error": msg, "type": ExceptionName}``."""
    return {"error": str(error), "type": type(error).__name__}


def retry_after_headers(error: BaseException) -> Optional[Dict[str, str]]:
    """``Retry-After`` header for errors carrying a ``retry_after_s`` hint.

    Whole seconds, rounded up: the client must not come back early.
    """
    retry_after_s = getattr(error, "retry_after_s", None)
    if retry_after_s is None:
        return None
    return {"Retry-After": str(max(1, int(-(-float(retry_after_s) // 1))))}


def models_payload(server: InferenceServer) -> Dict[str, object]:
    """The ``GET /v1/models`` body."""
    return {"default": server.default_model, "models": server.models()}


def trace_payload(server: InferenceServer, trace_id: str) -> Dict[str, object]:
    """The ``GET /v1/trace/{trace_id}`` body; raises ServeError for 404s."""
    tracer = getattr(server, "tracer", None)
    if tracer is None:
        raise ServeError("tracing is disabled on this server")
    trace = tracer.get(trace_id)
    if trace is None:
        raise ServeError(f"unknown trace {trace_id!r}")
    return trace


def health_payload(server: InferenceServer, uptime_s: float) -> Dict[str, object]:
    """The ``/healthz`` body: legacy summary plus live/ready/degraded.

    ``status`` stays ``"ok"`` on a healthy server (probes and older callers
    key on it); it reads ``"degraded"`` while a model is recovering and
    ``"down"`` when nothing can admit traffic.
    """
    levels = server.health_levels()
    if levels["live"] and levels["ready"]:
        status = "degraded" if levels["degraded"] else "ok"
    else:
        status = "down"
    return {
        "status": status,
        "live": levels["live"],
        "ready": levels["ready"],
        "degraded": levels["degraded"],
        "model_health": levels["models"],
        "network": server.network.name,
        "input_shape": list(server.network.input_shape.as_tuple()),
        "executor": str(server.executor),
        "policy": server.policy.kind,
        "models": server.model_names(),
        "default_model": server.default_model,
        "uptime_s": uptime_s,
    }


# ---------------------------------------------------------------------------
# server
# ---------------------------------------------------------------------------


class _ServeHTTPHandler(BaseHTTPRequestHandler):
    """Request handler bound to one :class:`ServeHTTPServer` (its ``front``)."""

    protocol_version = "HTTP/1.1"
    front: "ServeHTTPServer"  # injected by ServeHTTPServer.start()

    # The stdlib handler logs every request to stderr; a load generator at
    # 1000 rps would drown the terminal, so logging is off by default.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    # ------------------------------------------------------------------ GET
    def do_GET(self) -> None:
        parts = urllib.parse.urlsplit(self.path)
        if parts.path == "/healthz":
            self._send_json(200, self.front.health())
        elif parts.path == "/v1/stats":
            query = urllib.parse.parse_qs(parts.query)
            model = query.get("model", [None])[0]
            try:
                stats = self.front.server.stats(model=model)
            except UnknownModelError as error:
                self._send_error(404, error)
                return
            self._send_json(200, stats)
        elif parts.path == "/v1/models":
            self._send_json(200, models_payload(self.front.server))
        elif parts.path == "/metrics":
            registry = getattr(self.front.server, "metrics", None)
            if registry is None:
                self._send_error(404, ServeError("metrics registry not available"))
                return
            self._send_text(200, registry.render_prometheus(), PROMETHEUS_CONTENT_TYPE)
        elif parts.path.startswith("/v1/trace/"):
            trace_id = urllib.parse.unquote(parts.path[len("/v1/trace/") :])
            try:
                self._send_json(200, trace_payload(self.front.server, trace_id))
            except ServeError as error:
                self._send_error(404, error)
        else:
            self._send_error(404, ServeError(f"unknown path {self.path!r}"))

    # ------------------------------------------------------------------ POST
    def do_POST(self) -> None:
        if self.path == "/v1/infer":
            self._infer()
        elif self.path == "/v1/shutdown" and self.front.allow_shutdown:
            self._send_json(200, {"status": "shutting-down"})
            self.front.request_shutdown()
        else:
            self._send_error(404, ServeError(f"unknown path {self.path!r}"))

    def _infer(self) -> None:
        start = time.monotonic()
        try:
            payload = self._read_json_body()
            # allow_stream=False: one thread per connection cannot stream
            # incrementally without starving the pool, so 'stream' is an
            # explicit 400 here (the async front-end accepts it).
            request = parse_infer_request(payload, self.front.server, allow_stream=False)
            futures = submit_images(self.front.server, request)
            outputs = np.stack([future.result() for future in futures])
        except Exception as error:
            self._send_error(self._status_for(error), error)
            return
        latency_ms = (time.monotonic() - start) * 1e3
        self._send_json(200, infer_response_body(outputs, request, latency_ms))

    # ------------------------------------------------------------------ plumbing
    def _read_json_body(self) -> object:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise BadRequestError("missing Content-Length header")
        try:
            length = int(length_header)
        except ValueError:
            raise BadRequestError(
                f"invalid Content-Length {length_header!r}"
            ) from None
        if length < 0 or length > self.front.max_body_bytes:
            raise BadRequestError(
                f"request body of {length} bytes exceeds the "
                f"{self.front.max_body_bytes}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise BadRequestError(f"request body is not valid JSON: {error}") from error

    _status_for = staticmethod(status_for_error)

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = dump_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, error: BaseException) -> None:
        self._send_json(status, error_body(error), headers=retry_after_headers(error))


class ServeHTTPServer:
    """Threaded HTTP front-end over a running :class:`InferenceServer`.

    Parameters
    ----------
    server:
        The inference server requests are submitted to.  Its lifecycle is
        *not* owned by the front-end: start/stop it separately (or let the
        CLI do both).
    host, port:
        Bind address; ``port=0`` picks a free ephemeral port (see
        :attr:`port` after :meth:`start`).
    allow_shutdown:
        Enable the ``POST /v1/shutdown`` endpoint.
    max_body_bytes:
        Reject request bodies larger than this with HTTP 400.
    """

    def __init__(
        self,
        server: InferenceServer,
        host: str = DEFAULT_HOST,
        port: int = 0,
        allow_shutdown: bool = False,
        max_body_bytes: int = MAX_BODY_BYTES,
    ) -> None:
        self.server = server
        self.host = host
        self.allow_shutdown = bool(allow_shutdown)
        self.max_body_bytes = int(max_body_bytes)
        self._requested_port = int(port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started_ts: Optional[float] = None
        self._shutdown_event = threading.Event()

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "ServeHTTPServer":
        """Bind the socket and start answering requests on a daemon thread."""
        if self._httpd is not None:
            raise ServeError("HTTP front-end already started")
        handler = type("BoundServeHTTPHandler", (_ServeHTTPHandler,), {"front": self})
        # The socketserver default listen backlog (5) refuses bursts of
        # concurrent dials long before the thread-per-connection model is the
        # bottleneck; match the asyncio front-end's backlog instead.
        server_cls = type(
            "BoundServeHTTPServer", (ThreadingHTTPServer,), {"request_queue_size": 128}
        )
        self._httpd = server_cls((self.host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        self._started_ts = time.monotonic()
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting connections and join the serving thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        assert self._thread is not None
        self._thread.join()
        self._httpd.server_close()
        self._httpd = None
        self._shutdown_event.set()

    def __enter__(self) -> "ServeHTTPServer":
        return self.start() if self._httpd is None else self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ state
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._httpd is None:
            return self._requested_port
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        """Base URL clients should target.

        Wildcard binds (``0.0.0.0`` / ``::``) are rewritten to loopback —
        the wildcard address is where the socket listens, not an address a
        client can connect to.
        """
        host = "127.0.0.1" if self.host in ("0.0.0.0", "::", "") else self.host
        return f"http://{host}:{self.port}"

    def health(self) -> Dict[str, object]:
        """The ``/healthz`` body (see :func:`health_payload`)."""
        uptime = (
            time.monotonic() - self._started_ts if self._started_ts is not None else 0.0
        )
        return health_payload(self.server, uptime)

    def request_shutdown(self) -> None:
        """Signal whoever owns the front-end (see :meth:`wait`) to stop it.

        Handlers must not call :meth:`stop` themselves — joining the serving
        thread from inside one of its handlers would deadlock — so shutdown
        is a flag the owning thread observes.
        """
        self._shutdown_event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown is requested (or ``timeout`` elapses)."""
        return self._shutdown_event.wait(timeout)


# ---------------------------------------------------------------------------
# client
# ---------------------------------------------------------------------------


class HTTPInferenceClient:
    """Stdlib HTTP client speaking the ``/v1`` serving API.

    Duck-type compatible with :class:`InferenceServer` where the
    :class:`~repro.serve.loadgen.LoadGenerator` is concerned: ``submit()``
    returns a future of the output vector (dispatched on an internal thread
    pool, one HTTP request per inference), and ``stats()`` fetches the remote
    telemetry snapshot.  HTTP errors are mapped back onto the serve exception
    hierarchy (429 → :class:`QueueOverflowError`, 400 →
    :class:`BadRequestError`, breaker shed 503 → :class:`CircuitOpenError`,
    anything else → :class:`ServeError`), so shed-load accounting works
    unchanged over the wire.

    **Timeouts.**  ``connect_timeout_s`` bounds the TCP connect,
    ``timeout_s`` bounds each socket read after that (a hung server surfaces
    as :class:`~repro.errors.RequestTimeoutError` instead of blocking the
    caller forever).

    **Retries.**  Transient failures — connection errors, timeouts and 503s
    (the server restarting a replica, or a breaker shedding load) — are
    retried up to ``max_retries`` times with jittered exponential backoff;
    a ``Retry-After`` header, when the server sends one, overrides the
    computed delay.  Inference is pure and admission is idempotent, so
    retrying a ``POST /v1/infer`` cannot change the result.  Definite
    rejections (400, 404, 429) are never retried: shed-load accounting
    requires every 429 to surface exactly once.

    **Connections.**  Requests reuse keep-alive connections from an idle
    pool (at most ``max_connections`` retained) instead of dialing per
    request, so a load generator with ``--connections N`` holds N
    keep-alive sockets against the async front-end.  A pooled connection
    the server closed while idle gets one silent retry on a fresh dial —
    that is transport housekeeping, not a request retry, so it does not
    count against ``max_retries``.  :meth:`transport_stats` exposes the
    dial/reuse counters.
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 60.0,
        max_connections: int = 16,
        encoding: str = "json",
        model: Optional[str] = None,
        connect_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        retry_backoff_max_s: float = 2.0,
        retry_seed: int = 0,
        sleep=time.sleep,
    ) -> None:
        if encoding not in ENCODINGS:
            raise ServeError(
                f"unknown payload encoding {encoding!r}: expected one of {ENCODINGS}"
            )
        if max_retries < 0:
            raise ServeError(f"max_retries must be >= 0, got {max_retries}")
        self.base_url = url.rstrip("/")
        parts = urllib.parse.urlsplit(self.base_url)
        if parts.scheme not in ("http", "https") or parts.hostname is None:
            raise ServeError(
                f"invalid server URL {url!r}: expected http[s]://host[:port]"
            )
        self._scheme = parts.scheme
        self._host = parts.hostname
        self._port = parts.port
        self._path_prefix = parts.path.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.connect_timeout_s = (
            self.timeout_s if connect_timeout_s is None else float(connect_timeout_s)
        )
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.retry_backoff_max_s = float(retry_backoff_max_s)
        self.encoding = encoding
        #: Default model name sent with every request (None = server default).
        self.model = model
        self._sleep = sleep
        self._retry_rng = random.Random(retry_seed)
        self._retry_lock = make_lock("HTTPInferenceClient._retry_lock")
        self._retries_performed = 0
        self._max_connections = int(max_connections)
        self._pool_lock = make_lock("HTTPInferenceClient._pool_lock")
        self._pool: list = []  # idle keep-alive connections (LIFO)
        self._connections_opened = 0
        self._connections_reused = 0
        self._closed = False
        self._executor = ThreadPoolExecutor(
            max_workers=max_connections, thread_name_prefix="http-client"
        )

    # ------------------------------------------------------------------ transport
    @property
    def retries_performed(self) -> int:
        """Total transport retries this client has made (telemetry)."""
        with self._retry_lock:
            return self._retries_performed

    def transport_stats(self) -> Dict[str, int]:
        """Connection-pool counters: dials, reuses, idle size, retries."""
        with self._pool_lock:
            stats = {
                "connections_opened": self._connections_opened,
                "connections_reused": self._connections_reused,
                "connections_idle": len(self._pool),
            }
        stats["retries_performed"] = self.retries_performed
        return stats

    def _dial(self):
        connection_cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        connection = connection_cls(
            self._host, self._port, timeout=self.connect_timeout_s
        )
        try:
            connection.connect()
        except (TimeoutError, OSError) as error:
            raise self._transport_error("connect to", error) from error
        # Separate read budget: the connect timeout guarded the dial,
        # everything after runs on the per-read timeout.
        if connection.sock is not None:
            connection.sock.settimeout(self.timeout_s)
        with self._pool_lock:
            self._connections_opened += 1
        return connection

    def _acquire(self):
        """An idle pooled connection if one exists, else a fresh dial."""
        with self._pool_lock:
            if self._pool:
                self._connections_reused += 1
                return self._pool.pop(), True
        return self._dial(), False

    def _release(self, connection, reusable: bool) -> None:
        if reusable:
            with self._pool_lock:
                if not self._closed and len(self._pool) < self._max_connections:
                    self._pool.append(connection)
                    return
        connection.close()

    def _open_response(self, method: str, path: str, body: Optional[bytes]):
        """Send one request and return ``(connection, response)``, body unread.

        A pooled connection can go stale while idle (server-side keep-alive
        timeout, server restart); failures on a *reused* connection get one
        silent retry on a fresh dial before surfacing, and that retry does
        not count against ``max_retries`` — the request was never delivered.
        """
        headers = {"Content-Type": "application/json"} if body else {}
        connection, reused = self._acquire()
        try:
            connection.request(method, self._path_prefix + path, body=body, headers=headers)
            return connection, connection.getresponse()
        except (TimeoutError, OSError, http.client.HTTPException) as error:
            connection.close()
            if not reused:
                raise self._transport_error("read from", error) from error
        connection = self._dial()
        try:
            connection.request(method, self._path_prefix + path, body=body, headers=headers)
            return connection, connection.getresponse()
        except (TimeoutError, OSError, http.client.HTTPException) as error:
            connection.close()
            raise self._transport_error("read from", error) from error

    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        """One API call with bounded, jittered, Retry-After-aware retries."""
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServeError as error:
                if not getattr(error, "_retryable", False) or attempt >= self.max_retries:
                    raise
                delay = getattr(error, "retry_after_s", None)
                if not delay:
                    delay = min(
                        self.retry_backoff_s * (2**attempt), self.retry_backoff_max_s
                    )
                    delay *= 0.5 + 0.5 * self._retry_rng.random()  # jitter
                attempt += 1
                with self._retry_lock:
                    self._retries_performed += 1
                self._sleep(float(delay))

    def _request_once(self, method: str, path: str, payload: Optional[dict]) -> dict:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        connection, response = self._open_response(method, path, body)
        try:
            status = response.status
            reason = response.reason
            retry_after = response.getheader("Retry-After")
            raw = response.read()
        except (TimeoutError, OSError, http.client.HTTPException) as error:
            connection.close()
            raise self._transport_error("read from", error) from error
        self._release(connection, not response.will_close)
        if status >= 400:
            raise self._mapped_error(status, reason, raw, retry_after)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as error:
            raise ServeError(
                f"invalid JSON response from {self.base_url}: {error}"
            ) from error

    def _transport_error(self, stage: str, error: BaseException) -> ServeError:
        if isinstance(error, TimeoutError):
            mapped: ServeError = RequestTimeoutError(
                f"timed out trying to {stage} inference server at "
                f"{self.base_url} ({self.connect_timeout_s if 'connect' in stage else self.timeout_s} s)"
            )
        else:
            mapped = ServeError(
                f"cannot {stage} inference server at {self.base_url}: {error}"
            )
        mapped._retryable = True  # type: ignore[attr-defined]
        return mapped

    @staticmethod
    def _mapped_error(
        status: int, reason: str, raw: bytes, retry_after: Optional[str]
    ) -> ServeError:
        detail = ""
        error_type = ""
        try:
            body = json.loads(raw)
            detail = body.get("error", "")
            error_type = body.get("type", "")
        except (ValueError, AttributeError, TypeError):
            pass  # non-JSON or non-object body; fall back to the HTTP reason
        message = f"HTTP {status}: {detail or reason}"
        retry_after_s: Optional[float] = None
        if retry_after is not None:
            try:
                retry_after_s = max(0.0, float(retry_after))
            except ValueError:
                pass
        if status == 429:
            return QueueOverflowError(message)
        if status == 400:
            return BadRequestError(message)
        if status == 404 and error_type == "UnknownModelError":
            return UnknownModelError(message)
        if status == 503 and error_type == "CircuitOpenError":
            error: ServeError = CircuitOpenError(
                message, retry_after_s=retry_after_s or 1.0
            )
        else:
            error = ServeError(message)
            if retry_after_s is not None:
                error.retry_after_s = retry_after_s  # type: ignore[attr-defined]
        if status == 503:
            error._retryable = True  # type: ignore[attr-defined]
        return error

    # ------------------------------------------------------------------ API
    def _resolve_model(self, model: Optional[str]) -> Optional[str]:
        return self.model if model is None else model

    def _admission_fields(
        self, payload: dict, block: bool, timeout: Optional[float], model: Optional[str]
    ) -> dict:
        payload["block"] = bool(block)
        if timeout is not None:
            payload["timeout_s"] = float(timeout)
        model = self._resolve_model(model)
        if model is not None:
            payload["model"] = model
        return payload

    def infer(
        self,
        image: np.ndarray,
        block: bool = True,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
    ) -> np.ndarray:
        """Run one image through the remote server; returns the output vector.

        ``timeout`` bounds server-side *admission* blocking (the
        ``timeout_s`` payload field) with the same semantics as
        :meth:`InferenceServer.submit`: a still-full queue raises
        :class:`QueueOverflowError` (HTTP 429) once it expires.  ``model``
        routes to one of the server's hosted models (falling back to the
        client's default, then the server's).
        """
        image = np.asarray(image, dtype=float)
        if self.encoding == "npy_b64":
            payload = {"image_npy_b64": encode_array_b64(image)}
        else:
            payload = {"image": image.tolist()}
        self._admission_fields(payload, block, timeout, model)
        body = self._request("POST", "/v1/infer", payload)
        if "output_npy_b64" in body:
            return decode_array_b64(body["output_npy_b64"])
        return np.asarray(body["output"], dtype=float)

    def infer_batch(
        self,
        images: np.ndarray,
        block: bool = True,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
        stream: bool = False,
    ) -> np.ndarray:
        """Run a whole batch in one HTTP request; returns (B, num_outputs).

        ``stream=True`` consumes the response as NDJSON items instead of one
        body (async front-end only) — same outputs, same order, but the
        server starts sending as soon as the first item completes.
        """
        if stream:
            rows = [output for _, output in self.infer_stream(images, block, timeout, model)]
            return np.stack(rows)
        images = np.asarray(images, dtype=float)
        if self.encoding == "npy_b64":
            payload = {"images_npy_b64": encode_array_b64(images)}
        else:
            payload = {"images": images.tolist()}
        self._admission_fields(payload, block, timeout, model)
        body = self._request("POST", "/v1/infer", payload)
        if "outputs_npy_b64" in body:
            return decode_array_b64(body["outputs_npy_b64"])
        return np.asarray(body["outputs"], dtype=float)

    def infer_stream(
        self,
        images: np.ndarray,
        block: bool = True,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
        request_id: Optional[str] = None,
    ):
        """Stream a batch's per-item results as they complete (async front-end).

        Yields ``(index, output_vector)`` pairs in submission order — the
        server releases items through the same in-order path as the
        non-streamed response, so indices arrive ``0, 1, 2, ...``.  A
        mid-stream failure raises the mapped serve exception after all
        earlier items were yielded.  ``request_id`` names the request so a
        second connection can follow it via :meth:`events`.
        """
        images = np.asarray(images, dtype=float)
        if self.encoding == "npy_b64":
            payload: dict = {"images_npy_b64": encode_array_b64(images)}
        else:
            payload = {"images": images.tolist()}
        self._admission_fields(payload, block, timeout, model)
        payload["stream"] = True
        if request_id is not None:
            payload["request_id"] = request_id
        for item in self._ndjson_items("/v1/infer", payload):
            if "error" in item:
                raise self._item_error(item)
            if item.get("done"):
                return
            if "output_npy_b64" in item:
                yield int(item["index"]), decode_array_b64(item["output_npy_b64"])
            else:
                yield int(item["index"]), np.asarray(item["output"], dtype=float)

    def events(self, request_id: str):
        """Follow SSE progress for a named request (``GET .../events``).

        Yields ``{"event": name, "data": payload}`` dicts — ``progress``
        events while the request runs, one final ``done`` — then returns.
        Unknown request ids raise :class:`ServeError` (HTTP 404).
        """
        path = f"/v1/infer/{urllib.parse.quote(request_id)}/events"
        connection, response = self._open_response("GET", path, None)
        complete = False
        try:
            if response.status >= 400:
                raw = response.read()
                complete = not response.will_close
                raise self._mapped_error(
                    response.status,
                    response.reason,
                    raw,
                    response.getheader("Retry-After"),
                )
            event_name: Optional[str] = None
            data_lines: list = []
            while True:
                try:
                    line = response.readline()
                except (TimeoutError, OSError, http.client.HTTPException) as error:
                    raise self._transport_error("read from", error) from error
                if not line:
                    complete = not response.will_close
                    return
                text = line.decode("utf-8").rstrip("\r\n")
                if not text:  # blank line dispatches the accumulated event
                    if data_lines:
                        data = json.loads("\n".join(data_lines))
                        name = event_name or "message"
                        if name == "done":
                            # Drain before yielding: a consumer that stops at
                            # the terminal event closes this generator at the
                            # yield, and the connection must already be marked
                            # reusable by then.
                            response.read()  # drain the terminal chunk
                            complete = not response.will_close
                            yield {"event": name, "data": data}
                            return
                        yield {"event": name, "data": data}
                    event_name, data_lines = None, []
                elif text.startswith("event:"):
                    event_name = text[len("event:") :].strip()
                elif text.startswith("data:"):
                    data_lines.append(text[len("data:") :].strip())
        finally:
            self._release(connection, complete)

    def _ndjson_items(self, path: str, payload: dict):
        """POST ``payload`` and yield each NDJSON line of the response."""
        body = json.dumps(payload).encode("utf-8")
        connection, response = self._open_response("POST", path, body)
        complete = False
        try:
            if response.status >= 400:
                raw = response.read()
                complete = not response.will_close
                raise self._mapped_error(
                    response.status,
                    response.reason,
                    raw,
                    response.getheader("Retry-After"),
                )
            while True:
                try:
                    line = response.readline()
                except (TimeoutError, OSError, http.client.HTTPException) as error:
                    raise self._transport_error("read from", error) from error
                if not line:
                    # EOF without a terminal item; the body is exhausted, so
                    # the socket is still reusable unless the server asked to
                    # close it.
                    complete = not response.will_close
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    item = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ServeError(
                        f"invalid NDJSON line from {self.base_url}: {error}"
                    ) from error
                if isinstance(item, dict) and (item.get("done") or "error" in item):
                    # Drain before yielding the terminal item: consumers stop
                    # iterating the moment they see it (``infer_stream``
                    # returns on ``done``, raises on ``error``), which closes
                    # this generator at the yield — the connection must
                    # already be marked reusable by then.
                    try:
                        response.read()  # drain the terminal chunk for reuse
                        complete = not response.will_close
                    except (TimeoutError, OSError, http.client.HTTPException):
                        complete = False
                    yield item
                    return
                yield item
        finally:
            self._release(connection, complete)

    _ITEM_ERROR_TYPES = {
        "QueueOverflowError": QueueOverflowError,
        "BadRequestError": BadRequestError,
        "UnknownModelError": UnknownModelError,
        "ServeError": ServeError,
    }

    @classmethod
    def _item_error(cls, item: dict) -> ServeError:
        """Map a mid-stream ``{"index", "error", "type"}`` line to an exception."""
        message = f"item {item.get('index')}: {item.get('error', 'inference failed')}"
        if item.get("type") == "CircuitOpenError":
            return CircuitOpenError(message)
        return cls._ITEM_ERROR_TYPES.get(item.get("type", ""), ServeError)(message)

    def submit(
        self,
        image: np.ndarray,
        block: bool = True,
        timeout: Optional[float] = None,
        model: Optional[str] = None,
    ) -> "Future[np.ndarray]":
        """LoadGenerator-compatible async submit (one HTTP request per image).

        ``block``/``timeout`` carry :meth:`InferenceServer.submit` admission
        semantics over the wire.  Queue overflow surfaces when the future
        resolves (the wire cannot report admission separately from
        completion), which the load generator's gather phase accounts for.
        """
        return self._executor.submit(
            self.infer, np.asarray(image, dtype=float), block, timeout, model
        )

    def stats(self, model: Optional[str] = None) -> dict:
        """Remote :meth:`InferenceServer.stats` snapshot (JSON-typed).

        ``model`` narrows to one hosted model's snapshot.  Unlike the infer
        calls, the client's default model is *not* applied here: bare
        ``stats()`` keeps returning the whole-server snapshot.
        """
        path = "/v1/stats"
        if model is not None:
            path += "?" + urllib.parse.urlencode({"model": model})
        return self._request("GET", path)

    def models(self) -> dict:
        """Remote hosted-model listing (``GET /v1/models``)."""
        return self._request("GET", "/v1/models")

    def healthz(self) -> dict:
        """Remote liveness probe."""
        return self._request("GET", "/healthz")

    def shutdown_remote(self) -> dict:
        """Ask the remote front-end to shut down (requires ``allow_shutdown``)."""
        return self._request("POST", "/v1/shutdown", {})

    # ------------------------------------------------------------------ lifecycle
    def close(self) -> None:
        self._executor.shutdown(wait=True)
        with self._pool_lock:
            self._closed = True
            idle, self._pool = self._pool, []
        for connection in idle:
            connection.close()

    def __enter__(self) -> "HTTPInferenceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
