"""Queue-depth-driven replica autoscaling for the serving subsystem.

The decision logic and the control loop are deliberately separated:

:class:`AutoscalerPolicy` + :class:`AutoscalerState`
    A *pure* decision function.  ``decide(state, now, depth, replicas, ...)``
    consumes one observation — the clock, the model's current queue depth and
    replica count — mutates the per-model :class:`AutoscalerState` (when the
    depth first crossed the threshold, when the queue last went idle) and
    returns either a new replica target or ``None``.  Because nothing here
    touches threads or wall clocks, scale-up / scale-down / hold transitions
    are unit-testable from synthetic queue-depth traces.

:class:`Autoscaler`
    The control loop: a daemon thread that samples every hosted model's
    queue depth and arrival rate on a fixed interval, feeds the policy, and
    applies targets via ``pool.resize()`` — which drains a replica (waits for
    its in-flight batch) before retiring it.  Every applied change is
    recorded as a telemetry scale event.

Semantics
---------
* **Scale up** when the queue depth has stayed at or above
  ``scale_up_queue_depth`` for ``sustain_s`` seconds (a momentary burst that
  the current replicas absorb within one sustain window does not scale).
* **Scale down** one step after the depth has stayed at or below
  ``scale_down_queue_depth`` for ``cooldown_s`` seconds; each further step
  needs a fresh cooldown, so a fleet decays gradually back to
  ``min_replicas`` instead of collapsing at once.
* Replica counts are always clamped into ``[min_replicas, max_replicas]``
  (per-model overrides win over the policy defaults).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.concurrency import make_lock
from repro.errors import SimulationError

__all__ = [
    "AutoscalerPolicy",
    "AutoscalerState",
    "Autoscaler",
]


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Tunable thresholds of the queue-depth autoscaling loop.

    Parameters
    ----------
    min_replicas, max_replicas:
        Default replica range; per-model ``ModelDefinition`` bounds override.
    scale_up_queue_depth:
        Depth at (or above) which a model counts as overloaded.
    scale_down_queue_depth:
        Depth at (or below) which a model counts as idle.
    sustain_s:
        How long the overload must persist before a scale-up fires.
    cooldown_s:
        How long the idleness must persist before each scale-down step.
    interval_s:
        Control-loop sampling period.
    step:
        Replicas added/removed per scale event.
    drain_timeout_s:
        Longest the loop will wait for a busy replica to finish its in-flight
        batch when retiring it (scale-down gives up, not kills, on timeout).
    """

    min_replicas: int = 1
    max_replicas: int = 4
    scale_up_queue_depth: int = 4
    scale_down_queue_depth: int = 0
    sustain_s: float = 0.1
    cooldown_s: float = 2.0
    interval_s: float = 0.05
    step: int = 1
    drain_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise SimulationError(
                f"min_replicas must be >= 1, got {self.min_replicas}"
            )
        if self.max_replicas < self.min_replicas:
            raise SimulationError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})"
            )
        if self.scale_up_queue_depth < 1:
            raise SimulationError(
                f"scale_up_queue_depth must be >= 1, got {self.scale_up_queue_depth}"
            )
        if self.scale_down_queue_depth < 0:
            raise SimulationError(
                "scale_down_queue_depth must be >= 0, got "
                f"{self.scale_down_queue_depth}"
            )
        if self.scale_down_queue_depth >= self.scale_up_queue_depth:
            raise SimulationError(
                f"scale_down_queue_depth ({self.scale_down_queue_depth}) must be "
                f"below scale_up_queue_depth ({self.scale_up_queue_depth})"
            )
        for name in ("sustain_s", "cooldown_s", "interval_s", "drain_timeout_s"):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.step < 1:
            raise SimulationError(f"step must be >= 1, got {self.step}")

    # ------------------------------------------------------------------ decision
    def decide(
        self,
        state: "AutoscalerState",
        now: float,
        depth: int,
        replicas: int,
        min_replicas: Optional[int] = None,
        max_replicas: Optional[int] = None,
    ) -> Optional[int]:
        """One observation in, one optional replica target out.

        Mutates ``state`` (the overload / idle timers); returns the new
        replica target when a transition fires, else ``None``.
        """
        lo = self.min_replicas if min_replicas is None else int(min_replicas)
        hi = self.max_replicas if max_replicas is None else int(max_replicas)
        if replicas < lo:
            return lo
        if replicas > hi:
            return hi

        if depth >= self.scale_up_queue_depth:
            state.idle_since = None
            if state.over_since is None:
                state.over_since = now
            if now - state.over_since >= self.sustain_s and replicas < hi:
                state.over_since = None
                return min(replicas + self.step, hi)
            return None

        state.over_since = None
        if depth <= self.scale_down_queue_depth:
            if state.idle_since is None:
                state.idle_since = now
            if now - state.idle_since >= self.cooldown_s and replicas > lo:
                # restart the cooldown so each further step-down waits again
                state.idle_since = now
                return max(replicas - self.step, lo)
            return None

        # comfortable middle ground: neither timer runs
        state.idle_since = None
        return None


@dataclass
class AutoscalerState:
    """Per-model timers the decision function carries between observations."""

    over_since: Optional[float] = None
    idle_since: Optional[float] = None
    #: Arrival-rate bookkeeping for telemetry (admitted count at last sample).
    last_admitted: int = 0
    last_sample_ts: Optional[float] = None


class Autoscaler:
    """Daemon control loop applying an :class:`AutoscalerPolicy` to a server.

    ``runtimes`` is a live mapping of model name → runtime; each runtime must
    expose ``batcher.depth``, ``telemetry`` (a
    :class:`~repro.serve.telemetry.ServeTelemetry`), ``pool`` (an
    :class:`~repro.serve.workers.EngineWorkerPool`) and the per-model
    ``min_replicas`` / ``max_replicas`` bounds.  Models whose pool is not
    resizable (``serial`` executors) are left alone.
    """

    def __init__(
        self,
        runtimes: Dict[str, object],
        policy: Optional[AutoscalerPolicy] = None,
        clock=time.monotonic,
    ) -> None:
        self.policy = policy or AutoscalerPolicy()
        self._runtimes = runtimes
        self._clock = clock
        self._states: Dict[str, AutoscalerState] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._counter_lock = make_lock("Autoscaler._counter_lock")
        self._ticks = 0
        self._resizes = 0

    # ------------------------------------------------------------------ lifecycle
    def start(self) -> "Autoscaler":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._loop, name="serve-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ observability
    def snapshot(self) -> Dict[str, object]:
        """Control-loop bookkeeping: evaluation ticks and applied resizes."""
        with self._counter_lock:
            ticks = self._ticks
            resizes = self._resizes
        return {
            "running": self.running,
            "ticks": ticks,
            "resizes": resizes,
            "interval_s": self.policy.interval_s,
        }

    def register_metrics(self, registry) -> None:
        """Export loop health into a :class:`repro.obs.MetricsRegistry`."""

        def _collect():
            snap = self.snapshot()
            return [
                {
                    "name": "repro_autoscaler_ticks_total",
                    "type": "counter",
                    "help": "Autoscaler model evaluations performed.",
                    "samples": [({}, float(snap["ticks"]))],
                },
                {
                    "name": "repro_autoscaler_resizes_total",
                    "type": "counter",
                    "help": "Replica-pool resizes applied by the autoscaler.",
                    "samples": [({}, float(snap["resizes"]))],
                },
                {
                    "name": "repro_autoscaler_running",
                    "type": "gauge",
                    "help": "Whether the autoscaler control loop is alive.",
                    "samples": [({}, 1.0 if snap["running"] else 0.0)],
                },
            ]

        registry.register_collector(_collect)

    # ------------------------------------------------------------------ loop
    def _loop(self) -> None:
        while not self._stop.wait(self.policy.interval_s):
            for name, runtime in list(self._runtimes.items()):
                try:
                    self.evaluate_model(name, runtime)
                except Exception:  # repro: noqa[RPR105] - a scaling hiccup
                    # (e.g. a replica build failing) must not kill the
                    # control loop; the next tick retries.
                    continue

    def evaluate_model(self, name: str, runtime) -> Optional[int]:
        """Sample one model, apply the policy, resize + record if it fires.

        Exposed separately from the thread loop so tests can drive ticks
        deterministically.  Returns the applied replica count, or ``None``
        when nothing changed.
        """
        pool = runtime.pool
        if pool is None or not pool.resizable:
            return None
        with self._counter_lock:
            self._ticks += 1
        now = self._clock()
        state = self._states.setdefault(name, AutoscalerState())
        depth = runtime.batcher.depth
        admitted = runtime.telemetry.admitted_total
        if state.last_sample_ts is None or now <= state.last_sample_ts:
            rate = 0.0
        else:
            rate = (admitted - state.last_admitted) / (now - state.last_sample_ts)
        state.last_admitted = admitted
        state.last_sample_ts = now

        replicas = pool.count
        target = self.policy.decide(
            state,
            now,
            depth,
            replicas,
            min_replicas=runtime.min_replicas,
            max_replicas=runtime.max_replicas,
        )
        if target is None or target == replicas:
            return None
        if target < replicas and getattr(pool, "restarting", 0):
            # A replica is mid-restart: its slot is accounted for in `count`
            # but not in the free list, so a scale-down now would retire a
            # *healthy* replica and leave the fleet below target once the
            # restart lands.  Hold until the supervisor finishes.
            return None
        applied = pool.resize(target, drain_timeout_s=self.policy.drain_timeout_s)
        if applied == replicas:
            return None
        with self._counter_lock:
            self._resizes += 1
        runtime.telemetry.record_scale_event(
            direction="up" if applied > replicas else "down",
            from_replicas=replicas,
            to_replicas=applied,
            queue_depth=depth,
            arrival_rps=rate,
            reason="sustained-depth" if applied > replicas else "idle-cooldown",
        )
        return applied
