"""Open- and closed-loop load generation for the inference server.

Arrival processes
-----------------
* :func:`poisson_arrivals` — memoryless traffic: exponential inter-arrival
  times at a target mean rate, the standard open-loop model for independent
  users.
* :func:`bursty_arrivals` — an ON/OFF (interrupted-Poisson) process: bursts
  of back-to-back requests at ``burst_factor`` times the mean rate separated
  by idle gaps sized so the *long-run* rate still matches the target.  Bursty
  traffic is what stresses the micro-batcher's flush policy and the queue
  bound.

Loops
-----
* **Open loop** (:meth:`LoadGenerator.run_open_loop`): requests are injected
  on the arrival schedule regardless of completions — offered load is fixed,
  latency is the dependent variable.  This is the loop that exposes queueing
  collapse when the offered rate exceeds capacity.
* **Closed loop** (:meth:`LoadGenerator.run_closed_loop`): ``concurrency``
  synchronous clients each keep exactly one request outstanding — throughput
  is the dependent variable, and the system is never driven past
  ``concurrency`` in-flight requests.

Every run returns a :class:`LoadReport` carrying client-side latency
percentiles, achieved throughput, the server's own telemetry snapshot, and
the served outputs in submission order so callers can verify bitwise
equivalence against a direct ``run_batch`` of the same images.

Targets
-------
The generator drives anything with the server's ``submit()``/``stats()``
surface: an in-process :class:`~repro.serve.server.InferenceServer` or an
:class:`~repro.serve.http.HTTPInferenceClient` pointed at a remote
``--http`` front-end.  Over HTTP a queue overflow can only surface when the
response arrives (the wire does not report admission separately), so the
open loop counts :class:`~repro.errors.QueueOverflowError` as shed load at
*both* submit and gather time.

Multi-workload mixes
--------------------
Against a multi-model server, pass ``models=`` — one hosted-model name per
request — to either loop; request ``i`` is routed to ``models[i]``
(:func:`mixed_model_schedule` draws such a schedule from per-model traffic
weights).  Because hosted models can have different input shapes, ``images``
may then be a plain list; outputs with heterogeneous shapes come back as an
object array instead of a stacked matrix.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.concurrency import make_lock
from repro.errors import QueueOverflowError, SimulationError
from repro.serve.server import InferenceServer
from repro.serve.telemetry import latency_summary


def _validate_rate(rate_rps: float, num_requests: int) -> None:
    if rate_rps <= 0:
        raise SimulationError(f"arrival rate must be > 0 requests/s, got {rate_rps}")
    if num_requests < 1:
        raise SimulationError(f"num_requests must be >= 1, got {num_requests}")


def poisson_arrivals(rate_rps: float, num_requests: int, seed: int = 0) -> np.ndarray:
    """Cumulative arrival offsets (seconds) of a Poisson process."""
    _validate_rate(rate_rps, num_requests)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=num_requests)
    offsets = np.cumsum(gaps)
    return offsets - offsets[0]


def bursty_arrivals(
    rate_rps: float,
    num_requests: int,
    seed: int = 0,
    burst_length: int = 8,
    burst_factor: float = 10.0,
) -> np.ndarray:
    """Cumulative arrival offsets of an ON/OFF bursty process.

    Requests arrive in bursts of ``burst_length`` spaced at ``burst_factor``
    times the mean rate; the OFF gap between bursts restores the long-run
    mean to ``rate_rps``.  ``burst_factor`` must exceed 1 (at 1.0 the process
    degenerates to a uniform stream and no OFF gap exists).  When
    ``num_requests`` is too small for two full bursts, ``burst_length`` is
    clamped to ``num_requests // 2`` so at least one OFF gap exists —
    otherwise the whole trace would be a single burst offered at
    ``burst_factor`` times the requested rate.
    """
    _validate_rate(rate_rps, num_requests)
    if burst_length < 1:
        raise SimulationError(f"burst_length must be >= 1, got {burst_length}")
    if burst_factor <= 1.0:
        raise SimulationError(f"burst_factor must be > 1, got {burst_factor}")
    burst_length = min(burst_length, max(1, num_requests // 2))
    rng = np.random.default_rng(seed)
    on_gap = 1.0 / (rate_rps * burst_factor)
    # long-run mean of one burst cycle: burst_length requests over
    # burst_length/rate seconds → OFF gap makes up what the ON phase saves.
    off_gap_mean = burst_length * (1.0 / rate_rps - on_gap)
    gaps = np.full(num_requests, on_gap)
    burst_starts = np.arange(burst_length, num_requests, burst_length)
    gaps[burst_starts] = rng.exponential(off_gap_mean, size=len(burst_starts))
    offsets = np.cumsum(gaps)
    return offsets - offsets[0]


ARRIVAL_PROCESSES = {
    "poisson": poisson_arrivals,
    "bursty": bursty_arrivals,
}


def mixed_model_schedule(
    names: Sequence[str],
    num_requests: int,
    weights: Optional[Sequence[float]] = None,
    seed: int = 0,
) -> List[str]:
    """Draw a per-request model assignment from per-model traffic weights.

    Every model is guaranteed at least one request when ``num_requests >=
    len(names)`` (the first ``len(names)`` slots round-robin through the
    models before the weighted draw fills the rest), so a sweep never
    silently skips a hosted model.
    """
    names = list(names)
    if not names:
        raise SimulationError("mixed_model_schedule needs at least one model name")
    if num_requests < 1:
        raise SimulationError(f"num_requests must be >= 1, got {num_requests}")
    if weights is None:
        weights = [1.0] * len(names)
    weights = [float(w) for w in weights]
    if len(weights) != len(names):
        raise SimulationError(
            f"need one weight per model, got {len(weights)} weights "
            f"for {len(names)} models"
        )
    if any(w <= 0 for w in weights):
        raise SimulationError(f"traffic weights must be > 0, got {weights}")
    probabilities = np.asarray(weights, dtype=float)
    probabilities = probabilities / probabilities.sum()
    rng = np.random.default_rng(seed)
    schedule = [names[i % len(names)] for i in range(min(len(names), num_requests))]
    remaining = num_requests - len(schedule)
    if remaining > 0:
        schedule.extend(rng.choice(names, size=remaining, p=probabilities).tolist())
    # shuffle so the guaranteed head does not bias the arrival ordering
    rng.shuffle(schedule)
    return list(schedule)


def _as_image_list(images) -> List[np.ndarray]:
    """Normalise ``images`` (array or list, possibly ragged) to a list."""
    return [np.asarray(image, dtype=float) for image in images]


def _stack_outputs(outputs: List[np.ndarray]) -> np.ndarray:
    """Stack homogeneous outputs; fall back to an object array for mixes."""
    if not outputs:
        return np.empty((0, 0))
    if len({np.shape(output) for output in outputs}) == 1:
        return np.stack(outputs)
    stacked = np.empty(len(outputs), dtype=object)
    stacked[:] = outputs
    return stacked


def _submit_kwargs(models: Optional[Sequence[str]], index: int) -> Dict[str, str]:
    """The extra ``submit()`` kwargs for request ``index`` (model routing)."""
    return {} if models is None else {"model": models[index]}


@dataclass
class LoadReport:
    """Client-side view of one load-generation run."""

    loop: str
    requests: int
    rejected: int
    duration_s: float
    achieved_rps: float
    offered_rps: Optional[float]
    client_latency: Dict[str, float]
    server: Dict[str, object]
    #: Served outputs in submission order, (requests, num_outputs); rejected
    #: open-loop requests leave no row (their indices are in ``rejected_seqs``).
    outputs: np.ndarray = field(repr=False)
    rejected_seqs: List[int] = field(default_factory=list)

    def summary(self) -> Dict[str, object]:
        """Flat JSON-friendly summary (excludes the raw outputs)."""
        flat: Dict[str, object] = {
            "loop": self.loop,
            "requests": self.requests,
            "rejected": self.rejected,
            "duration_s": self.duration_s,
            "achieved_rps": self.achieved_rps,
            "offered_rps": self.offered_rps,
        }
        flat.update({f"client_{k}": v for k, v in self.client_latency.items()})
        flat["server"] = self.server
        return flat

    def stage_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Server-side per-stage latency breakdown captured with this run.

        Empty when the target server had tracing disabled (the breakdown is
        derived from per-request trace spans).
        """
        telemetry = self.server.get("telemetry") if isinstance(self.server, dict) else None
        if not isinstance(telemetry, dict):
            return {}
        breakdown = telemetry.get("stage_breakdown")
        return breakdown if isinstance(breakdown, dict) else {}


class LoadGenerator:
    """Drives an inference server (in-process or HTTP) with synthetic traffic."""

    def __init__(self, server: "InferenceServer") -> None:
        # Any object with submit(image, block=..., timeout=...) -> Future and
        # stats() works; see the module docstring's Targets section.
        self.server = server

    # ------------------------------------------------------------------ open loop
    def run_open_loop(
        self,
        images: np.ndarray,
        arrivals_s: np.ndarray,
        shed_on_overflow: bool = False,
        models: Optional[Sequence[str]] = None,
    ) -> LoadReport:
        """Inject ``images[i]`` at ``arrivals_s[i]``; wait for every response.

        With ``shed_on_overflow`` the generator submits non-blocking and
        counts queue overflows as shed load (open-loop semantics under
        overload); otherwise submits block, pushing backpressure into the
        arrival schedule.  ``models`` (one hosted-model name per image)
        routes each request on a multi-model server.
        """
        images = _as_image_list(images)
        arrivals_s = np.asarray(arrivals_s, dtype=float)
        if len(images) != len(arrivals_s):
            raise SimulationError(
                f"need one arrival offset per image, got {len(images)} images "
                f"and {len(arrivals_s)} offsets"
            )
        if models is not None and len(models) != len(images):
            raise SimulationError(
                f"need one model name per image, got {len(models)} names "
                f"and {len(images)} images"
            )
        submissions: List[tuple] = []  # (image index, submit timestamp, future)
        rejected_seqs: List[int] = []
        start = time.monotonic()
        for index, (image, offset) in enumerate(zip(images, arrivals_s)):
            delay = start + float(offset) - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                future = self.server.submit(
                    image,
                    block=not shed_on_overflow,
                    **_submit_kwargs(models, index),
                )
            except QueueOverflowError:
                rejected_seqs.append(index)
                continue
            submissions.append((index, time.monotonic(), future))
        outputs = []
        latencies = []
        for index, ts, future in submissions:
            try:
                outputs.append(future.result())
            except QueueOverflowError:
                # HTTP targets report overflow on completion, not admission.
                rejected_seqs.append(index)
                continue
            latencies.append(time.monotonic() - ts)
        rejected_seqs.sort()
        duration = time.monotonic() - start
        offered = len(images) / float(arrivals_s[-1]) if arrivals_s[-1] > 0 else None
        return LoadReport(
            loop="open",
            requests=len(outputs),
            rejected=len(rejected_seqs),
            duration_s=duration,
            achieved_rps=len(outputs) / duration if duration > 0 else 0.0,
            offered_rps=offered,
            client_latency=latency_summary(latencies),
            server=self.server.stats(),
            outputs=_stack_outputs(outputs),
            rejected_seqs=rejected_seqs,
        )

    # ------------------------------------------------------------------ closed loop
    def run_closed_loop(
        self,
        images: np.ndarray,
        concurrency: int = 2,
        think_time_s: float = 0.0,
        models: Optional[Sequence[str]] = None,
    ) -> LoadReport:
        """``concurrency`` synchronous clients round-robin through ``images``.

        Client ``c`` serves images ``c, c+concurrency, c+2·concurrency, …``,
        keeping exactly one request outstanding (plus an optional think time
        between requests).  Outputs are reassembled in image order.
        ``models`` (one hosted-model name per image) routes each request on a
        multi-model server.
        """
        images = _as_image_list(images)
        if concurrency < 1:
            raise SimulationError(f"concurrency must be >= 1, got {concurrency}")
        if think_time_s < 0:
            raise SimulationError(f"think_time_s must be >= 0, got {think_time_s}")
        if models is not None and len(models) != len(images):
            raise SimulationError(
                f"need one model name per image, got {len(models)} names "
                f"and {len(images)} images"
            )
        outputs: List[Optional[np.ndarray]] = [None] * len(images)
        latencies: List[float] = []
        latency_lock = make_lock("LoadGenerator.latency_lock")
        errors: List[BaseException] = []

        def client(worker: int) -> None:
            try:
                for index in range(worker, len(images), concurrency):
                    submit_ts = time.monotonic()
                    result = self.server.submit(
                        images[index], **_submit_kwargs(models, index)
                    ).result()
                    elapsed = time.monotonic() - submit_ts
                    outputs[index] = result
                    with latency_lock:
                        latencies.append(elapsed)
                    if think_time_s:
                        time.sleep(think_time_s)
            except BaseException as error:  # surfaced after join
                errors.append(error)

        start = time.monotonic()
        clients = [
            threading.Thread(
                target=client,
                args=(worker,),
                name=f"loadgen-{worker}",
                daemon=False,  # clients are joined below; no work may be lost
            )
            for worker in range(min(concurrency, len(images)))
        ]
        for thread in clients:
            thread.start()
        for thread in clients:
            thread.join()
        duration = time.monotonic() - start
        if errors:
            raise errors[0]
        return LoadReport(
            loop="closed",
            requests=len(images),
            rejected=0,
            duration_s=duration,
            achieved_rps=len(images) / duration if duration > 0 else 0.0,
            offered_rps=None,
            client_latency=latency_summary(latencies),
            server=self.server.stats(),
            outputs=_stack_outputs([o for o in outputs if o is not None]),
            rejected_seqs=[],
        )
