"""Pareto-frontier extraction over design-space sweep results.

The Section VI-B flow returns a single "best IPS/W" configuration, but a
system architect usually wants the whole IPS-vs-power (or IPS-vs-area)
trade-off curve.  :func:`pareto_frontier` filters a list of
:class:`~repro.core.sweep.SweepResult` points down to the non-dominated set
for any pair of objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.sweep import SweepResult
from repro.errors import SimulationError

#: Objectives where larger values are better.
MAXIMIZE = {"ips", "ips_per_watt"}
#: Objectives where smaller values are better.
MINIMIZE = {"power_w", "area_mm2", "energy_per_inference_j"}


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated design point with its objective values."""

    parameters: Dict[str, float]
    objectives: Dict[str, float]

    def as_dict(self) -> Dict[str, float]:
        """Flat row combining parameters and objectives."""
        row = dict(self.parameters)
        row.update(self.objectives)
        return row


def _objective_value(result: SweepResult, objective: str) -> float:
    row = result.row()
    if objective not in row:
        raise SimulationError(f"unknown objective {objective!r}")
    return float(row[objective])


def _dominates(a: Sequence[float], b: Sequence[float], senses: Sequence[bool]) -> bool:
    """True when point ``a`` dominates ``b`` (senses[i] True = maximise)."""
    at_least_as_good = True
    strictly_better = False
    for value_a, value_b, maximise in zip(a, b, senses):
        if maximise:
            if value_a < value_b:
                at_least_as_good = False
                break
            if value_a > value_b:
                strictly_better = True
        else:
            if value_a > value_b:
                at_least_as_good = False
                break
            if value_a < value_b:
                strictly_better = True
    return at_least_as_good and strictly_better


def pareto_frontier(
    results: Sequence[SweepResult],
    objectives: Sequence[str] = ("ips", "power_w"),
    feasible_only: bool = True,
) -> List[ParetoPoint]:
    """Extract the non-dominated points of a sweep.

    Parameters
    ----------
    results:
        Evaluated sweep points.
    objectives:
        Metric names to trade off; each must be in :data:`MAXIMIZE` or
        :data:`MINIMIZE`.
    feasible_only:
        Drop points whose optical link budget cannot be closed.

    Returns
    -------
    list of ParetoPoint
        Sorted by the first objective (best first).
    """
    if not results:
        raise SimulationError("cannot compute a Pareto frontier of an empty sweep")
    if len(objectives) < 2:
        raise SimulationError("at least two objectives are required")
    senses = []
    for objective in objectives:
        if objective in MAXIMIZE:
            senses.append(True)
        elif objective in MINIMIZE:
            senses.append(False)
        else:
            raise SimulationError(
                f"objective {objective!r} is not registered as maximise or minimise"
            )

    candidates = [
        result
        for result in results
        if not feasible_only or result.metrics.feasible
    ]
    if not candidates:
        raise SimulationError("no feasible design points in the sweep")

    values = [
        tuple(_objective_value(result, objective) for objective in objectives)
        for result in candidates
    ]
    frontier: List[ParetoPoint] = []
    for index, (result, value) in enumerate(zip(candidates, values)):
        dominated = any(
            _dominates(other, value, senses)
            for other_index, other in enumerate(values)
            if other_index != index
        )
        if not dominated:
            frontier.append(
                ParetoPoint(
                    parameters=dict(result.parameters),
                    objectives=dict(zip(objectives, value)),
                )
            )

    reverse = senses[0]
    frontier.sort(key=lambda point: point.objectives[objectives[0]], reverse=reverse)
    return frontier


def frontier_rows(frontier: Sequence[ParetoPoint]) -> List[Dict[str, float]]:
    """Flatten a frontier into plain-dict rows for export."""
    return [point.as_dict() for point in frontier]
