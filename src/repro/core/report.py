"""Plain-text report formatting for metrics, comparisons and breakdowns.

The benchmark harness prints these tables so that each benchmark's output can
be compared side by side with the corresponding table or figure of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.comparison import GpuComparison
from repro.errors import SimulationError
from repro.perf.metrics import PerformanceMetrics


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a simple fixed-width text table."""
    rows = [list(map(str, row)) for row in rows]
    if not headers:
        raise SimulationError("a table needs at least one column")
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise SimulationError("table row length does not match header length")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_metrics_report(metrics: PerformanceMetrics) -> str:
    """Human-readable report for one evaluated design point."""
    config = metrics.config
    lines = [
        f"Design point : {config.describe()}",
        f"Network      : {metrics.network_name}",
        f"IPS          : {metrics.inferences_per_second:,.0f}",
        f"Power        : {metrics.power_w:.2f} W",
        f"IPS/W        : {metrics.ips_per_watt:,.0f}",
        f"Area         : {metrics.area_mm2:.1f} mm^2",
        f"Energy/inf   : {metrics.energy_per_inference_j * 1e6:.1f} uJ",
        f"MAC util.    : {metrics.mac_utilization * 100:.1f} %",
        f"Laser (elec) : {metrics.laser.electrical_power_w:.3f} W"
        + ("" if metrics.feasible else "  [INFEASIBLE LINK BUDGET]"),
        "",
        "Power breakdown (W):",
    ]
    power = metrics.power_breakdown.components_w
    for name, value in sorted(power.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<18s} {value:8.3f}")
    lines.append("")
    lines.append("Area breakdown (mm^2):")
    for name, value in sorted(metrics.area_breakdown.components_mm2.items(), key=lambda kv: -kv[1]):
        if value > 0:
            lines.append(f"  {name:<18s} {value:8.2f}")
    return "\n".join(lines)


def format_comparison_table(comparison: GpuComparison) -> str:
    """Table I style comparison of this work vs. a GPU reference."""
    rows: List[List[object]] = []
    for row in comparison.rows():
        rows.append(
            [
                row.system,
                f"{row.ips:,.0f}",
                f"{row.ips_per_watt:,.0f}",
                f"{row.power_w:.0f} W",
                f"{row.area_mm2:.0f} mm^2",
            ]
        )
    table = format_table(["System", "IPS", "IPS/W", "Power", "Area"], rows)
    summary = comparison.summary()
    footer = (
        f"power advantage: {summary['power_advantage']:.1f}x   "
        f"area advantage: {summary['area_advantage']:.2f}x   "
        f"IPS ratio: {summary['ips_ratio']:.2f}x"
    )
    return table + "\n" + footer


def format_breakdown(breakdown: Dict[str, float], unit: str) -> str:
    """Format any named breakdown (power, energy, area) as a text table."""
    rows = [
        [name, f"{value:.3f} {unit}"]
        for name, value in sorted(breakdown.items(), key=lambda kv: -kv[1])
    ]
    return format_table(["component", f"value ({unit})"], rows)
