"""Comparison against GPU baselines (Table I of the paper).

The paper's Table I compares the optimised 128×128 dual-core design against
the NVIDIA A100 (INT8, batch 128) on ResNet-50: similar IPS at 15.4× lower
power and 7.24× lower area.  :func:`compare_to_gpu` reproduces that table from
an evaluated :class:`~repro.perf.metrics.PerformanceMetrics` and any
:class:`~repro.baselines.gpu.GPUReference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.baselines.gpu import GPUReference, NVIDIA_A100
from repro.errors import SimulationError
from repro.perf.metrics import PerformanceMetrics


@dataclass(frozen=True)
class ComparisonRow:
    """One row of the Table I style comparison."""

    system: str
    ips: float
    ips_per_watt: float
    power_w: float
    area_mm2: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports."""
        return {
            "system": self.system,
            "ips": self.ips,
            "ips_per_watt": self.ips_per_watt,
            "power_w": self.power_w,
            "area_mm2": self.area_mm2,
        }


@dataclass(frozen=True)
class GpuComparison:
    """The full comparison: both rows plus the headline ratios."""

    this_work: ComparisonRow
    gpu: ComparisonRow

    @property
    def ips_ratio(self) -> float:
        """IPS of this work divided by the GPU's IPS."""
        return self.this_work.ips / self.gpu.ips

    @property
    def power_advantage(self) -> float:
        """GPU power divided by this work's power (paper: 15.4×)."""
        return self.gpu.power_w / self.this_work.power_w

    @property
    def area_advantage(self) -> float:
        """GPU area divided by this work's area (paper: 7.24×)."""
        return self.gpu.area_mm2 / self.this_work.area_mm2

    @property
    def efficiency_advantage(self) -> float:
        """This work's IPS/W divided by the GPU's IPS/W."""
        return self.this_work.ips_per_watt / self.gpu.ips_per_watt

    def rows(self) -> List[ComparisonRow]:
        """Both table rows, this work first."""
        return [self.this_work, self.gpu]

    def summary(self) -> Dict[str, float]:
        """Headline ratios of the comparison."""
        return {
            "ips_ratio": self.ips_ratio,
            "power_advantage": self.power_advantage,
            "area_advantage": self.area_advantage,
            "efficiency_advantage": self.efficiency_advantage,
        }


def compare_to_gpu(
    metrics: PerformanceMetrics, gpu: GPUReference = NVIDIA_A100
) -> GpuComparison:
    """Build the Table I comparison from evaluated metrics and a GPU reference."""
    if metrics is None:
        raise SimulationError("metrics are required for the comparison")
    this_work = ComparisonRow(
        system="This work",
        ips=metrics.inferences_per_second,
        ips_per_watt=metrics.ips_per_watt,
        power_w=metrics.power_w,
        area_mm2=metrics.area_mm2,
    )
    gpu_row = ComparisonRow(
        system=gpu.name,
        ips=gpu.resnet50_ips,
        ips_per_watt=gpu.ips_per_watt,
        power_w=gpu.power_w,
        area_mm2=gpu.die_area_mm2,
    )
    return GpuComparison(this_work=this_work, gpu=gpu_row)
