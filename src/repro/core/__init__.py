"""The paper's primary contribution: the accelerator model and its optimizer.

* :class:`~repro.core.accelerator.OpticalCrossbarAccelerator` — the
  user-facing façade tying the dataflow simulator, power/area models and
  functional crossbar together for one design point.
* :class:`~repro.core.simulation.SimulationFramework` — the two-step flow of
  Fig. 5 (runtime specs → high-level metrics) with caching for sweeps.
* :mod:`repro.core.sweep` — design-space sweep utilities.
* :class:`~repro.core.optimizer.DesignOptimizer` — the Section VI-B
  optimization flow (minimum viable batch → maximum SRAM under the area cap →
  best array size).
* :mod:`repro.core.sharding` — multi-core sharded execution of the functional
  datapath's tiled GEMMs (round-robin core assignment + worker pools).
* :mod:`repro.core.comparison` — comparison against GPU baselines (Table I).
* :mod:`repro.core.report` — plain-text/dict report formatting.
"""

from repro.core.accelerator import OpticalCrossbarAccelerator
from repro.core.comparison import ComparisonRow, compare_to_gpu
from repro.core.inference import FunctionalInferenceEngine, generate_random_weights
from repro.core.optimizer import DesignOptimizer, OptimizationResult
from repro.core.pareto import ParetoPoint, frontier_rows, pareto_frontier
from repro.core.report import format_comparison_table, format_metrics_report
from repro.core.sharding import ShardedExecutionEngine, ShardReport, resolve_worker_count
from repro.core.simulation import SimulationFramework
from repro.core.sweep import SweepResult, sweep_array_sizes, sweep_batch_sizes, sweep_input_sram

__all__ = [
    "ComparisonRow",
    "DesignOptimizer",
    "FunctionalInferenceEngine",
    "OpticalCrossbarAccelerator",
    "generate_random_weights",
    "OptimizationResult",
    "ParetoPoint",
    "ShardReport",
    "ShardedExecutionEngine",
    "SimulationFramework",
    "SweepResult",
    "resolve_worker_count",
    "compare_to_gpu",
    "format_comparison_table",
    "format_metrics_report",
    "frontier_rows",
    "pareto_frontier",
    "sweep_array_sizes",
    "sweep_batch_sizes",
    "sweep_input_sram",
]
