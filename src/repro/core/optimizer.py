"""The Section VI-B design-optimization flow.

The paper optimises a design point in three ordered steps:

1. **Batch size** — find the smallest batch that is large enough for the
   dual-core scheme to hide the PCM programming latency (larger batches give
   almost no additional IPS/W but force a bigger input SRAM).
2. **SRAM size** — grow the input SRAM up to the *critical size* for that
   batch (the size at which the whole per-layer input working set fits and
   DRAM re-fetches vanish), bounded by a practical chip-area cap (~1 cm² in
   the paper).
3. **Array size** — sweep rows × columns and keep the configuration with the
   best IPS/W; among near-ties, prefer the largest array because it delivers
   higher absolute IPS.

:class:`DesignOptimizer` implements exactly this flow on top of the
:class:`~repro.core.simulation.SimulationFramework`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.config.chip import ChipConfig
from repro.constants import BITS_PER_MB
from repro.core.simulation import SimulationFramework
from repro.errors import OptimizationError
from repro.nn.network import Network
from repro.perf.area import AreaModel
from repro.perf.metrics import PerformanceMetrics


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of the three-step optimization flow."""

    config: ChipConfig
    metrics: PerformanceMetrics
    chosen_batch_size: int
    chosen_input_sram_mb: float
    chosen_rows: int
    chosen_columns: int
    batch_candidates: Dict[int, float] = field(default_factory=dict)
    array_candidates: List[Dict[str, float]] = field(default_factory=list)

    def summary(self) -> Dict[str, float]:
        """Flat summary of the chosen design point."""
        return {
            "rows": self.chosen_rows,
            "columns": self.chosen_columns,
            "batch_size": self.chosen_batch_size,
            "input_sram_mb": self.chosen_input_sram_mb,
            "ips": self.metrics.inferences_per_second,
            "power_w": self.metrics.power_w,
            "ips_per_watt": self.metrics.ips_per_watt,
            "area_mm2": self.metrics.area_mm2,
        }


class DesignOptimizer:
    """Searches the design space with the paper's three-step flow.

    Parameters
    ----------
    network:
        Workload to optimise for (the paper uses ResNet-50 v1.5).
    base_config:
        Starting configuration; its technology constants, clock rate and
        non-input SRAM sizes are kept.
    area_cap_mm2:
        Practical chip-size limit used in step 2.
    ips_hiding_tolerance:
        A batch size is "large enough" when its dual-core IPS reaches this
        fraction of the IPS at the largest candidate batch.
    """

    DEFAULT_BATCH_CANDIDATES = (1, 2, 4, 8, 16, 32, 64, 128)
    DEFAULT_ARRAY_CANDIDATES = (16, 32, 64, 128, 256)
    DEFAULT_SRAM_CANDIDATES_MB = (1.0, 2.0, 4.0, 8.0, 16.0, 26.3, 32.0, 48.0, 64.0)

    def __init__(
        self,
        network: Network,
        base_config: ChipConfig,
        area_cap_mm2: float = 160.0,
        ips_hiding_tolerance: float = 0.9,
    ) -> None:
        if area_cap_mm2 <= 0:
            raise OptimizationError(f"area_cap_mm2 must be > 0, got {area_cap_mm2}")
        if not 0 < ips_hiding_tolerance <= 1:
            raise OptimizationError(
                f"ips_hiding_tolerance must be in (0, 1], got {ips_hiding_tolerance}"
            )
        self.network = network
        self.base_config = base_config
        self.area_cap_mm2 = area_cap_mm2
        self.ips_hiding_tolerance = ips_hiding_tolerance
        self.framework = SimulationFramework(network)

    # ------------------------------------------------------------------ step 1
    def choose_batch_size(
        self, candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES
    ) -> Dict[int, float]:
        """Evaluate candidate batch sizes; return {batch: dual-core IPS}."""
        if not candidates:
            raise OptimizationError("batch candidates must be non-empty")
        results: Dict[int, float] = {}
        for batch in sorted(candidates):
            config = self.base_config.with_updates(batch_size=int(batch), num_cores=2)
            results[int(batch)] = self.framework.evaluate(config).inferences_per_second
        return results

    def smallest_sufficient_batch(
        self, candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES
    ) -> int:
        """Smallest batch whose IPS is within tolerance of the largest batch's IPS."""
        ips_by_batch = self.choose_batch_size(candidates)
        reference = ips_by_batch[max(ips_by_batch)]
        for batch in sorted(ips_by_batch):
            if ips_by_batch[batch] >= self.ips_hiding_tolerance * reference:
                return batch
        return max(ips_by_batch)

    # ------------------------------------------------------------------ step 2
    def critical_input_sram_mb(self, batch_size: int) -> float:
        """Input SRAM needed to hold the largest per-layer input working set (MB)."""
        bits = self.network.largest_activation_bits(
            self.base_config.technology.activation_bits, batch_size
        )
        return bits / BITS_PER_MB

    def choose_input_sram_mb(
        self,
        batch_size: int,
        candidates: Sequence[float] = DEFAULT_SRAM_CANDIDATES_MB,
    ) -> float:
        """Pick the smallest candidate ≥ the critical size that fits the area cap.

        If no candidate reaches the critical size (or fits the cap), the
        largest candidate that fits the area cap is returned.
        """
        if not candidates:
            raise OptimizationError("SRAM candidates must be non-empty")
        critical = self.critical_input_sram_mb(batch_size)
        fitting: List[float] = []
        for input_mb in sorted(candidates):
            config = self.base_config.with_updates(
                batch_size=batch_size, sram=self.base_config.sram.scaled_input(input_mb)
            )
            if not AreaModel(config).exceeds(self.area_cap_mm2):
                fitting.append(input_mb)
        if not fitting:
            raise OptimizationError(
                f"no candidate input SRAM size fits the {self.area_cap_mm2} mm² area cap"
            )
        for input_mb in fitting:
            if input_mb >= critical:
                return input_mb
        return fitting[-1]

    # ------------------------------------------------------------------ step 3
    def choose_array_size(
        self,
        batch_size: int,
        input_sram_mb: float,
        rows_candidates: Sequence[int] = DEFAULT_ARRAY_CANDIDATES,
        columns_candidates: Sequence[int] = DEFAULT_ARRAY_CANDIDATES,
        tie_tolerance: float = 0.03,
    ) -> List[Dict[str, float]]:
        """Evaluate the rows × columns grid; return rows sorted by IPS/W."""
        evaluations: List[Dict[str, float]] = []
        for rows in rows_candidates:
            for columns in columns_candidates:
                config = self.base_config.with_updates(
                    rows=int(rows),
                    columns=int(columns),
                    batch_size=batch_size,
                    sram=self.base_config.sram.scaled_input(input_sram_mb),
                )
                metrics = self.framework.evaluate(config)
                evaluations.append(
                    {
                        "rows": rows,
                        "columns": columns,
                        "ips": metrics.inferences_per_second,
                        "ips_per_watt": metrics.ips_per_watt,
                        "area_mm2": metrics.area_mm2,
                        "feasible": metrics.feasible,
                    }
                )
        evaluations.sort(key=lambda row: row["ips_per_watt"], reverse=True)
        return evaluations

    # ------------------------------------------------------------------ flow
    def optimize(
        self,
        batch_candidates: Sequence[int] = DEFAULT_BATCH_CANDIDATES,
        array_candidates: Sequence[int] = DEFAULT_ARRAY_CANDIDATES,
        sram_candidates_mb: Sequence[float] = DEFAULT_SRAM_CANDIDATES_MB,
        tie_tolerance: float = 0.03,
    ) -> OptimizationResult:
        """Run the full three-step flow and return the chosen design point."""
        batch_ips = self.choose_batch_size(batch_candidates)
        batch_size = self.smallest_sufficient_batch(batch_candidates)
        input_sram_mb = self.choose_input_sram_mb(batch_size, sram_candidates_mb)
        evaluations = self.choose_array_size(
            batch_size, input_sram_mb, array_candidates, array_candidates, tie_tolerance
        )

        feasible = [row for row in evaluations if row["feasible"]]
        if not feasible:
            raise OptimizationError("no feasible array size found within the laser budget")
        best_ipsw = feasible[0]["ips_per_watt"]
        near_ties = [
            row for row in feasible if row["ips_per_watt"] >= (1.0 - tie_tolerance) * best_ipsw
        ]
        # Among near-ties prefer the largest array (highest IPS), as the paper does.
        chosen = max(near_ties, key=lambda row: (row["rows"] * row["columns"], row["ips"]))

        final_config = self.base_config.with_updates(
            rows=int(chosen["rows"]),
            columns=int(chosen["columns"]),
            batch_size=batch_size,
            num_cores=2,
            sram=self.base_config.sram.scaled_input(input_sram_mb),
        )
        metrics = self.framework.evaluate(final_config)
        return OptimizationResult(
            config=final_config,
            metrics=metrics,
            chosen_batch_size=batch_size,
            chosen_input_sram_mb=input_sram_mb,
            chosen_rows=int(chosen["rows"]),
            chosen_columns=int(chosen["columns"]),
            batch_candidates=batch_ips,
            array_candidates=evaluations,
        )
