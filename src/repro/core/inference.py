"""End-to-end functional inference on the optical crossbar.

The performance path answers "how fast / how much power"; this module answers
"does the architecture actually compute a CNN correctly at INT6?".
:class:`FunctionalInferenceEngine` executes a whole
:class:`~repro.nn.network.Network` layer by layer:

* convolutions and dense layers run on the functional INT6 crossbar
  (differential PCM weights, ODAC-quantised inputs, ADC-quantised outputs,
  optional analog impairments) through the
  :class:`~repro.core.accelerator.OpticalCrossbarAccelerator` façade;
* pooling, batch-norm (folded), activations, residual adds and flattening run
  digitally in numpy, as they would in the chip's digital backend.

Execution is *batched end-to-end*: :meth:`FunctionalInferenceEngine.run_batch`
carries a whole stack of images through every layer at once — convolutions
unroll the full batch into one im2col GEMM, dense layers run the batch as one
tiled crossbar GEMM (weights are programmed once per layer thanks to the
accelerator's tile cache), and pooling/activations are whole-tensor numpy
operations.  :meth:`run` is the single-image wrapper.  In noiseless mode the
batched outputs are bitwise-identical to running the images one at a time.

A float numpy reference of the same network
(:meth:`FunctionalInferenceEngine.run_reference`) allows the INT6 optical
result to be compared against exact arithmetic; the bundled example runs a
LeNet-5-class network this way and reports the agreement.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.config.chip import ChipConfig
from repro.core.accelerator import OpticalCrossbarAccelerator
from repro.crossbar.noise import CrossbarNoiseModel
from repro.errors import SimulationError, WorkloadError
from repro.nn.layers import (
    ActivationLayer,
    AddLayer,
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    PoolLayer,
)
from repro.nn.network import Network


def generate_random_weights(network: Network, seed: int = 0, scale: float = 0.5) -> Dict[str, np.ndarray]:
    """Synthetic weights for every crossbar layer of ``network``.

    Convolutions get ``(k, k, C_in, C_out)`` filters, dense layers get
    ``(in_features, out_features)`` matrices; both are drawn from a normal
    distribution with the given scale.  Biases are omitted (the bundled
    topologies use ``bias=False`` for their conv layers and the functional
    engine treats missing biases as zero).
    """
    rng = np.random.default_rng(seed)
    weights: Dict[str, np.ndarray] = {}
    for info in network.crossbar_layers:
        layer = info.layer
        if isinstance(layer, ConvLayer):
            shape = (
                layer.kernel_size,
                layer.kernel_size,
                info.input_shape.channels,
                layer.out_channels,
            )
        else:
            shape = (info.input_shape.num_elements, layer.out_features)
        weights[layer.name] = rng.normal(0.0, scale, size=shape)
    return weights


def agreement_metrics(optical: np.ndarray, reference: np.ndarray) -> Dict[str, float]:
    """Aggregate agreement metrics between batched optical and reference outputs.

    Both arrays must have shape (batch, num_outputs).  Shared by
    :meth:`FunctionalInferenceEngine.batch_agreement` and the CLI ``infer``
    command so the relative-error / top-1 definitions cannot drift apart.

    A sample whose reference output is all-zero has no meaningful relative
    error scale: if the optical output is also zero the relative error is
    0.0 (exact agreement), otherwise it is reported as ``inf`` instead of
    silently claiming perfect agreement.
    """
    norms = np.linalg.norm(reference, axis=1)
    errors = np.linalg.norm(optical - reference, axis=1)
    relative_errors = np.where(
        norms > 0,
        errors / np.where(norms > 0, norms, 1.0),
        np.where(errors > 0, np.inf, 0.0),
    )
    top1 = np.argmax(optical, axis=1) == np.argmax(reference, axis=1)
    return {
        "batch": float(optical.shape[0]),
        "mean_relative_error": float(np.mean(relative_errors)),
        "max_relative_error": float(np.max(relative_errors)),
        "top1_match_rate": float(np.mean(top1)),
    }


def _pool_windows(tensor: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """(B, out_h, out_w, ky, kx, C) window view of a (B, H, W, C) tensor.

    The window axes are ordered (ky, kx) ahead of the channel axis so that
    reductions over them accumulate in the same element order as the
    per-window reference loop.
    """
    windows = sliding_window_view(tensor, (kernel, kernel), axis=(1, 2))
    return windows[:, ::stride, ::stride].transpose(0, 1, 2, 4, 5, 3)


def _max_pool(tensor: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Batched max pooling over a (B, H, W, C) tensor via a strided gather."""
    if padding:
        tensor = np.pad(
            tensor,
            ((0, 0), (padding, padding), (padding, padding), (0, 0)),
            mode="constant",
            constant_values=-np.inf,
        )
    return _pool_windows(tensor, kernel, stride).max(axis=(3, 4))


def _avg_pool(tensor: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Batched average pooling over a (B, H, W, C) tensor via a strided gather."""
    if padding:
        tensor = np.pad(
            tensor, ((0, 0), (padding, padding), (padding, padding), (0, 0)), mode="constant"
        )
    return _pool_windows(tensor, kernel, stride).mean(axis=(3, 4))


def _apply_activation(tensor: np.ndarray, kind: str) -> np.ndarray:
    if kind == "relu":
        return np.maximum(tensor, 0.0)
    if kind == "relu6":
        return np.clip(tensor, 0.0, 6.0)
    if kind in ("identity", "linear", ""):
        return tensor
    if kind == "sigmoid":
        return 1.0 / (1.0 + np.exp(-tensor))
    if kind == "tanh":
        return np.tanh(tensor)
    raise WorkloadError(f"unsupported activation {kind!r}")


class FunctionalInferenceEngine:
    """Runs a whole network functionally, optically or as a float reference.

    Parameters
    ----------
    network:
        The workload description; batched execution plus the accelerator's
        programmed-tile cache make multi-image functional runs practical well
        beyond LeNet scale.
    weights:
        Mapping from crossbar-layer name to its weight tensor; see
        :func:`generate_random_weights` for the expected shapes.
    config:
        Chip configuration for the functional crossbar tiles.
    noise_model:
        Optional analog impairments for the optical path.
    execution:
        Worker-pool specification for the accelerator's multi-core sharded
        execution (``"serial"``, ``"thread"`` or a positive worker count);
        outputs are bitwise identical for every setting.
    """

    def __init__(
        self,
        network: Network,
        weights: Dict[str, np.ndarray],
        config: Optional[ChipConfig] = None,
        noise_model: Optional[CrossbarNoiseModel] = None,
        seed: int = 0,
        execution: "str | int" = "serial",
    ) -> None:
        self.network = network
        self.weights = dict(weights)
        self.accelerator = OpticalCrossbarAccelerator(
            config, noise_model=noise_model, seed=seed, execution=execution
        )
        missing = [
            info.name for info in network.crossbar_layers if info.name not in self.weights
        ]
        if missing:
            raise SimulationError(f"missing weights for layers: {missing}")

    # ------------------------------------------------------------------ run
    def run(self, image: np.ndarray) -> np.ndarray:
        """Run one sample through the network on the optical crossbar."""
        return self._execute(np.asarray(image, dtype=float)[None], optical=True)[0]

    def run_reference(self, image: np.ndarray) -> np.ndarray:
        """Run one sample with exact float arithmetic (numpy reference)."""
        return self._execute(np.asarray(image, dtype=float)[None], optical=False)[0]

    def run_batch(self, images: np.ndarray) -> np.ndarray:
        """Run a batch of samples on the optical crossbar in one pass.

        Parameters
        ----------
        images:
            Array of shape (batch, H, W, C) — or any sequence that stacks to
            it.

        Returns
        -------
        numpy.ndarray
            Flattened network outputs, shape (batch, num_outputs).

        Every crossbar layer processes the whole batch as one tiled GEMM and
        programs its weights at most once, so per-image cost drops sharply
        compared with looping :meth:`run`.
        """
        return self._execute(self._as_batch(images), optical=True)

    def run_batch_reference(self, images: np.ndarray) -> np.ndarray:
        """Float-reference counterpart of :meth:`run_batch`."""
        return self._execute(self._as_batch(images), optical=False)

    def agreement(self, image: np.ndarray) -> Dict[str, float]:
        """Compare optical vs reference outputs for one sample."""
        optical = self.run(image)
        reference = self.run_reference(image)
        metrics = agreement_metrics(optical[None, :], reference[None, :])
        correlation = (
            float(np.corrcoef(optical.ravel(), reference.ravel())[0, 1])
            if optical.size > 1
            else 1.0
        )
        return {
            "relative_error": metrics["max_relative_error"],
            "correlation": correlation,
            "top1_match": metrics["top1_match_rate"],
        }

    def batch_agreement(self, images: np.ndarray) -> Dict[str, float]:
        """Aggregate optical-vs-reference agreement over a batch of samples."""
        images = self._as_batch(images)
        optical = self.run_batch(images)
        reference = self.run_batch_reference(images)
        return agreement_metrics(optical, reference)

    # ------------------------------------------------------------------ internals
    def _as_batch(self, images: np.ndarray) -> np.ndarray:
        images = np.asarray(images, dtype=float)
        expected = self.network.input_shape.as_tuple()
        if images.size == 0:
            raise SimulationError(
                "input batch is empty: run_batch requires at least one image of "
                f"shape {expected}"
            )
        if images.ndim != 4 or images.shape[1:] != expected:
            raise SimulationError(
                f"input batch must have shape (batch, {', '.join(map(str, expected))}), "
                f"got {images.shape}"
            )
        return images

    def _execute(self, images: np.ndarray, optical: bool) -> np.ndarray:
        expected = self.network.input_shape
        if images.shape[1:] != expected.as_tuple():
            raise SimulationError(
                f"input image must have shape {expected.as_tuple()}, got {images.shape[1:]}"
            )

        outputs_by_name: Dict[str, np.ndarray] = {}
        batch = images.shape[0]
        current = images
        for info in self.network.shape_infos:
            layer = info.layer
            layer_input = current
            if layer.input_from is not None:
                if layer.input_from not in outputs_by_name:
                    raise SimulationError(
                        f"layer {layer.name!r} references unknown input {layer.input_from!r}"
                    )
                layer_input = outputs_by_name[layer.input_from]

            if isinstance(layer, ConvLayer):
                current = self._conv(layer, layer_input, optical)
                current = _apply_activation(current, layer.activation)
            elif isinstance(layer, DenseLayer):
                current = self._dense(layer, layer_input, optical)
                current = _apply_activation(current, layer.activation)
            elif isinstance(layer, PoolLayer):
                current = self._pool(layer, layer_input)
            elif isinstance(layer, BatchNormLayer):
                current = layer_input  # folded into the preceding conv at inference
            elif isinstance(layer, ActivationLayer):
                current = _apply_activation(layer_input, layer.kind)
            elif isinstance(layer, AddLayer):
                skip_from = getattr(layer, "skip_from", None)
                if skip_from is not None:
                    if skip_from not in outputs_by_name:
                        raise SimulationError(
                            f"add layer {layer.name!r} references unknown skip input {skip_from!r}"
                        )
                    second_operand = outputs_by_name[skip_from]
                else:
                    second_operand = current
                current = layer_input + second_operand
            elif isinstance(layer, FlattenLayer):
                current = layer_input.reshape(batch, 1, 1, -1)
            else:
                raise SimulationError(f"unsupported layer type {type(layer).__name__}")
            outputs_by_name[layer.name] = current

        return current.reshape(batch, -1)

    def _conv(self, layer: ConvLayer, tensor: np.ndarray, optical: bool) -> np.ndarray:
        weights = self.weights[layer.name]
        padding = layer.resolved_padding()
        if optical:
            return self.accelerator.conv2d(tensor, weights, stride=layer.stride, padding=padding)
        from repro.nn.im2col import conv2d_reference

        return conv2d_reference(tensor, weights, stride=layer.stride, padding=padding)

    def _dense(self, layer: DenseLayer, tensor: np.ndarray, optical: bool) -> np.ndarray:
        weights = self.weights[layer.name]
        matrix = tensor.reshape(tensor.shape[0], -1)
        if optical:
            result = self.accelerator.linear(weights, matrix)
        else:
            # One GEMV per sample keeps the float reference bitwise identical
            # to single-image execution; the batch here is images, not patches,
            # so this stays cheap.
            result = np.stack([vector @ weights for vector in matrix])
        return result.reshape(tensor.shape[0], 1, 1, -1)

    def _pool(self, layer: PoolLayer, tensor: np.ndarray) -> np.ndarray:
        if layer.global_pool:
            return tensor.mean(axis=(1, 2), keepdims=True)
        if layer.kind == "max":
            return _max_pool(tensor, layer.kernel_size, layer.stride, layer.padding)
        return _avg_pool(tensor, layer.kernel_size, layer.stride, layer.padding)
