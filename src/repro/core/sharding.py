"""Multi-core sharded execution of tiled crossbar GEMMs.

The paper's headline architectural feature (Section IV) is the multi-core
crossbar chip: a dual-core design keeps two copies of the photonic datapath so
one core computes while the other is reprogrammed.
:class:`~repro.crossbar.dual_core.DualCoreCrossbar` models that schedule
analytically; this module makes the *functional* datapath follow the same
schedule.  :class:`ShardedExecutionEngine` partitions the per-tile GEMMs of a
programmed tile plan (see :mod:`repro.core.accelerator`) across the chip's
``num_cores`` crossbar cores with the same static round-robin assignment the
analytical scheduler uses — tile ``i`` computes on core ``i % num_cores`` —
and optionally executes the shards on a thread pool.

Determinism
-----------
Result assembly is decoupled from shard completion order: every tile's partial
product is collected into a slot indexed by its position in the plan, and the
final accumulation into the output matrix walks the tiles in plan order on the
calling thread.  Together with per-tile noise generators (each
:class:`~repro.crossbar.signed.SignedCrossbarEngine` owns an independent
``SeedSequence``-derived generator), this makes sharded execution bitwise
identical to serial execution — with or without a noise model — regardless of
worker count or completion order.

Cross-checking against the analytical schedule
----------------------------------------------
:meth:`ShardedExecutionEngine.programming_jobs` converts a tile plan into the
:class:`~repro.crossbar.dual_core.ProgrammingJob` sequence the analytical
scheduler consumes, and :meth:`ShardedExecutionEngine.schedule_summary` runs
:meth:`DualCoreCrossbar.summarize` over it, so tests (and
``functional_statistics()`` consumers) can verify that the functional per-core
tile assignment and busy times agree with the event-driven schedule.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.concurrency import make_lock, thread_shared
from repro.crossbar.dual_core import DualCoreCrossbar, ProgrammingJob
from repro.errors import SimulationError

#: Worker-pool specification: ``"serial"`` (inline execution on the calling
#: thread), ``"thread"`` (one worker thread per crossbar core), or a positive
#: integer worker count.
WorkerSpec = Union[str, int]


def resolve_worker_count(workers: WorkerSpec, num_cores: int) -> int:
    """Normalise a :data:`WorkerSpec` into a thread count (0 = inline serial).

    ``"serial"`` maps to 0 (no pool, run on the calling thread), ``"thread"``
    maps to one worker per crossbar core, and a positive integer is used as
    given.  Anything else raises :class:`SimulationError`.
    """
    if workers == "serial":
        return 0
    if workers == "thread":
        return max(int(num_cores), 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise SimulationError(
            f"workers must be 'serial', 'thread' or a positive integer, got {workers!r}"
        )
    if workers < 1:
        raise SimulationError(f"worker count must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class ShardReport:
    """Per-core accounting of one sharded GEMM dispatch.

    ``core_tile_counts[c]`` is the number of tiles executed on core ``c`` and
    ``core_busy_time_s[c]`` the modelled busy time of that core (per-tile PCM
    programming time plus ``num_vectors`` MAC cycles of compute per tile),
    matching the per-core program+compute totals of the analytical
    :class:`~repro.crossbar.dual_core.DualCoreCrossbar` schedule.
    """

    core_tile_counts: Tuple[int, ...]
    core_busy_time_s: Tuple[float, ...]


@thread_shared
class ShardedExecutionEngine:
    """Executes a tile plan's GEMMs across ``num_cores`` crossbar cores.

    Parameters
    ----------
    num_cores:
        Number of physical crossbar cores on the chip.  Tiles are assigned
        round-robin (tile ``i`` → core ``i % num_cores``), matching the
        core-alternation semantics of
        :class:`~repro.crossbar.dual_core.DualCoreCrossbar`.
    mac_clock_hz:
        Optical MAC rate, used for the per-tile compute-time estimate
        (one streamed vector per MAC cycle).
    workers:
        Worker pool specification; see :data:`WorkerSpec` and
        :func:`resolve_worker_count`.
    """

    def __init__(
        self,
        num_cores: int,
        mac_clock_hz: float,
        workers: WorkerSpec = "serial",
    ) -> None:
        if num_cores < 1:
            raise SimulationError(f"num_cores must be >= 1, got {num_cores}")
        if mac_clock_hz <= 0:
            raise SimulationError(f"mac_clock_hz must be > 0, got {mac_clock_hz}")
        self.num_cores = int(num_cores)
        self.mac_clock_hz = float(mac_clock_hz)
        self.workers = workers
        self._worker_count = resolve_worker_count(workers, self.num_cores)
        self._pool: "ThreadPoolExecutor | None" = None
        self._pool_lock = make_lock("ShardedExecutionEngine._pool_lock")

    def _ensure_pool(self) -> ThreadPoolExecutor:
        """Lazily create the worker pool, reused across dispatches.

        Guarded by a lock so two concurrent first dispatches cannot each
        build a pool and leak one of them.
        """
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._worker_count,
                    thread_name_prefix="crossbar-shard",
                )
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; a later dispatch re-creates it)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    # ------------------------------------------------------------------ schedule
    def core_assignment(self, num_tiles: int) -> List[int]:
        """Static round-robin core of each tile: tile ``i`` → ``i % num_cores``."""
        if num_tiles < 0:
            raise SimulationError(f"num_tiles must be >= 0, got {num_tiles}")
        return [index % self.num_cores for index in range(num_tiles)]

    def programming_jobs(self, plan, num_vectors: int) -> List[ProgrammingJob]:
        """Analytical :class:`ProgrammingJob` sequence for ``plan``.

        Each tile contributes one job: its accumulated PCM programming time
        and ``num_vectors`` MAC cycles of compute.  Feeding the result to
        :class:`~repro.crossbar.dual_core.DualCoreCrossbar` reproduces the
        core assignment used by :meth:`execute` (job ``i`` computes on core
        ``i % 2`` in the dual-core schedule).
        """
        if num_vectors < 1:
            raise SimulationError(f"num_vectors must be >= 1, got {num_vectors}")
        compute_time_s = num_vectors / self.mac_clock_hz
        jobs: List[ProgrammingJob] = []
        for index, tile in enumerate(plan.tiles):
            stats = tile.engine.statistics()
            jobs.append(
                ProgrammingJob(
                    name=f"tile{index}",
                    programming_time_s=float(stats["programming_time_s"]),
                    compute_time_s=compute_time_s,
                )
            )
        return jobs

    def schedule_summary(self, plan, num_vectors: int) -> Dict[str, float]:
        """:meth:`DualCoreCrossbar.summarize` over the plan's tile jobs."""
        return DualCoreCrossbar.summarize(self.programming_jobs(plan, num_vectors))

    def _report(self, plan, num_vectors: int) -> ShardReport:
        """Per-core tile counts and busy-time estimates for one dispatch."""
        counts = [0] * self.num_cores
        busy = [0.0] * self.num_cores
        compute_time_s = num_vectors / self.mac_clock_hz
        for index, tile in enumerate(plan.tiles):
            core = index % self.num_cores
            counts[core] += 1
            stats = tile.engine.statistics()
            busy[core] += float(stats["programming_time_s"]) + compute_time_s
        return ShardReport(tuple(counts), tuple(busy))

    # ------------------------------------------------------------------ execute
    def execute(self, plan, inputs: np.ndarray, rows: int):
        """Run ``inputs`` through every tile of ``plan`` and assemble the result.

        Parameters
        ----------
        plan:
            A programmed tile plan (``repro.core.accelerator._TilePlan``): an
            object with ``n`` (output width) and ``tiles``, where each tile
            carries a programmed engine plus its ``k_start``/``k_end``/
            ``n_start``/``n_end`` spans.
        inputs:
            Input matrix of shape (num_vectors, k).
        rows:
            Physical crossbar row count (tile input padding width).

        Returns
        -------
        (numpy.ndarray, ShardReport)
            The (num_vectors, plan.n) result and the per-core accounting of
            this dispatch.  Partial products are accumulated in plan order on
            the calling thread, so the result is bitwise independent of the
            worker pool and of shard completion order.
        """
        num_vectors = inputs.shape[0]
        tiles = plan.tiles

        def run_tile(index: int) -> np.ndarray:
            tile = tiles[index]
            padded = np.zeros((num_vectors, rows))
            padded[:, : tile.tile_rows] = inputs[:, tile.k_start : tile.k_end]
            return tile.engine.matmul(padded)

        if self._worker_count == 0 or len(tiles) <= 1:
            partials = [run_tile(index) for index in range(len(tiles))]
        else:
            partials = list(self._ensure_pool().map(run_tile, range(len(tiles))))

        result = np.zeros((num_vectors, plan.n))
        for tile, partial in zip(tiles, partials):
            result[:, tile.n_start : tile.n_end] += partial[:, : tile.tile_cols]
        return result, self._report(plan, num_vectors)


def compute_entries_per_core(
    entries: Sequence, num_cores: int
) -> Tuple[Tuple[int, ...], Tuple[float, ...]]:
    """Fold a :meth:`DualCoreCrossbar.schedule` timeline into per-core totals.

    Returns ``(tile_counts, busy_time_s)`` per core, where busy time is the
    sum of each core's program and compute phase durations — directly
    comparable with the ``per_core_*`` entries of
    :meth:`repro.core.accelerator.OpticalCrossbarAccelerator.functional_statistics`.
    """
    counts = [0] * num_cores
    busy = [0.0] * num_cores
    for entry in entries:
        if entry.core >= num_cores:
            raise SimulationError(
                f"schedule entry on core {entry.core} exceeds num_cores={num_cores}"
            )
        busy[entry.core] += entry.duration_s
        if entry.kind == "compute":
            counts[entry.core] += 1
    return tuple(counts), tuple(busy)
