"""Design-space sweep utilities.

These helpers generate the data behind the paper's Section VI trend studies:
IPS/W over array dimensions (Fig. 6), power and IPS/W over batch and SRAM
sizes (Fig. 7a/7b), and IPS over batch size for one vs. two cores (Fig. 7c).
Each sweep returns a list of :class:`SweepResult` rows that the analysis and
benchmark layers turn into the actual figure series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config.chip import ChipConfig
from repro.core.simulation import SimulationFramework
from repro.errors import SimulationError
from repro.nn.network import Network
from repro.perf.metrics import PerformanceMetrics


@dataclass(frozen=True)
class SweepResult:
    """One evaluated design point of a sweep."""

    parameters: Dict[str, float]
    metrics: PerformanceMetrics

    def value(self, name: str) -> float:
        """Look up a swept parameter by name."""
        if name not in self.parameters:
            raise SimulationError(f"sweep parameter {name!r} not recorded")
        return self.parameters[name]

    def row(self) -> Dict[str, float]:
        """Flat row combining the swept parameters and the headline metrics."""
        row = dict(self.parameters)
        row.update(
            {
                "ips": self.metrics.inferences_per_second,
                "power_w": self.metrics.power_w,
                "ips_per_watt": self.metrics.ips_per_watt,
                "area_mm2": self.metrics.area_mm2,
                "energy_per_inference_j": self.metrics.energy_per_inference_j,
                "feasible": self.metrics.feasible,
            }
        )
        return row


def _evaluate_many(
    network: Network,
    configs: Iterable[ChipConfig],
    parameter_sets: Iterable[Dict[str, float]],
    framework: Optional[SimulationFramework] = None,
) -> List[SweepResult]:
    framework = framework or SimulationFramework(network)
    results: List[SweepResult] = []
    for config, parameters in zip(configs, parameter_sets):
        metrics = framework.evaluate(config)
        results.append(SweepResult(parameters=parameters, metrics=metrics))
    return results


def sweep_array_sizes(
    network: Network,
    base_config: ChipConfig,
    rows_values: Sequence[int],
    columns_values: Sequence[int],
    framework: Optional[SimulationFramework] = None,
) -> List[SweepResult]:
    """Sweep the crossbar dimensions over a rows × columns grid (Fig. 6)."""
    if not rows_values or not columns_values:
        raise SimulationError("rows_values and columns_values must be non-empty")
    configs = []
    parameters = []
    for rows in rows_values:
        for columns in columns_values:
            configs.append(base_config.with_updates(rows=int(rows), columns=int(columns)))
            parameters.append({"rows": float(rows), "columns": float(columns)})
    return _evaluate_many(network, configs, parameters, framework)


def sweep_batch_sizes(
    network: Network,
    base_config: ChipConfig,
    batch_sizes: Sequence[int],
    num_cores_values: Sequence[int] = (2,),
    framework: Optional[SimulationFramework] = None,
) -> List[SweepResult]:
    """Sweep the batch size (and optionally the core count) — Fig. 7a / 7c."""
    if not batch_sizes:
        raise SimulationError("batch_sizes must be non-empty")
    configs = []
    parameters = []
    for num_cores in num_cores_values:
        for batch in batch_sizes:
            configs.append(
                base_config.with_updates(batch_size=int(batch), num_cores=int(num_cores))
            )
            parameters.append({"batch_size": float(batch), "num_cores": float(num_cores)})
    return _evaluate_many(network, configs, parameters, framework)


def sweep_input_sram(
    network: Network,
    base_config: ChipConfig,
    input_sram_mb_values: Sequence[float],
    batch_sizes: Sequence[int] = (32,),
    framework: Optional[SimulationFramework] = None,
) -> List[SweepResult]:
    """Sweep the input-SRAM capacity for one or more batch sizes — Fig. 7b."""
    if not input_sram_mb_values:
        raise SimulationError("input_sram_mb_values must be non-empty")
    configs = []
    parameters = []
    for batch in batch_sizes:
        for input_mb in input_sram_mb_values:
            configs.append(
                base_config.with_updates(
                    batch_size=int(batch),
                    sram=base_config.sram.scaled_input(float(input_mb)),
                )
            )
            parameters.append({"batch_size": float(batch), "input_sram_mb": float(input_mb)})
    return _evaluate_many(network, configs, parameters, framework)


def best_by(results: Sequence[SweepResult], metric: str = "ips_per_watt") -> SweepResult:
    """Return the sweep point with the best value of ``metric`` (higher is better)."""
    if not results:
        raise SimulationError("cannot select the best point of an empty sweep")
    def key(result: SweepResult) -> float:
        row = result.row()
        if metric not in row:
            raise SimulationError(f"unknown metric {metric!r}")
        return row[metric]
    return max(results, key=key)
