"""The two-step simulation framework of Fig. 5.

Step 1 ("runtime specs") runs the dataflow simulator to obtain compute
cycles, programming passes and memory traffic for a specific network, batch
size and chip configuration.  Step 2 ("high-level metrics") feeds those specs
to the power, area and laser models to obtain IPS, IPS/W, power and area.

:class:`SimulationFramework` memoises both steps so that the design-space
sweeps of Section VI (hundreds of design points over the same network) stay
fast.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config.chip import ChipConfig
from repro.config.serialization import chip_config_to_dict
from repro.errors import SimulationError
from repro.nn.network import Network
from repro.perf.metrics import PerformanceMetrics, evaluate_runtime
from repro.scalesim.runtime import NetworkRuntime
from repro.scalesim.simulator import CrossbarDataflowSimulator


def _config_key(config: ChipConfig) -> Tuple:
    """Hashable key identifying a chip configuration."""
    data = chip_config_to_dict(config)
    sram = data.pop("sram")
    technology = data.pop("technology")
    return (
        tuple(sorted(data.items())),
        tuple(sorted(sram.items())),
        tuple(sorted(technology.items())),
    )


class SimulationFramework:
    """End-to-end evaluation of (network, configuration) design points.

    Parameters
    ----------
    network:
        The CNN workload to evaluate (e.g. ResNet-50 v1.5).
    cache:
        Keep per-configuration results in memory; disable only when sweeping
        more configurations than memory can comfortably hold.
    """

    def __init__(self, network: Network, cache: bool = True) -> None:
        if network is None:
            raise SimulationError("a network workload is required")
        self.network = network
        self._cache_enabled = cache
        self._runtime_cache: Dict[Tuple, NetworkRuntime] = {}
        self._metrics_cache: Dict[Tuple, PerformanceMetrics] = {}

    # ------------------------------------------------------------------ step 1
    def runtime_specs(self, config: ChipConfig) -> NetworkRuntime:
        """Step 1: compute cycles, programming passes and memory traffic."""
        key = _config_key(config) if self._cache_enabled else None
        if key is not None and key in self._runtime_cache:
            return self._runtime_cache[key]
        runtime = CrossbarDataflowSimulator(config).simulate(self.network)
        if key is not None:
            self._runtime_cache[key] = runtime
        return runtime

    # ------------------------------------------------------------------ step 2
    def evaluate(self, config: ChipConfig) -> PerformanceMetrics:
        """Step 2: IPS, IPS/W, power and area for one design point."""
        key = _config_key(config) if self._cache_enabled else None
        if key is not None and key in self._metrics_cache:
            return self._metrics_cache[key]
        runtime = self.runtime_specs(config)
        metrics = evaluate_runtime(runtime)
        if key is not None:
            self._metrics_cache[key] = metrics
        return metrics

    # ------------------------------------------------------------------ misc
    def clear_cache(self) -> None:
        """Drop all memoised results."""
        self._runtime_cache.clear()
        self._metrics_cache.clear()

    @property
    def cache_size(self) -> int:
        """Number of memoised metric evaluations."""
        return len(self._metrics_cache)
