"""User-facing façade: :class:`OpticalCrossbarAccelerator`.

An ``OpticalCrossbarAccelerator`` ties together, for one chip design point:

* the performance path — dataflow simulation plus power/area models
  (:meth:`evaluate`, :meth:`runtime_specs`), and
* the functional path — signed GEMMs executed on the INT6 functional crossbar
  (:meth:`linear`, :meth:`conv2d`), which is what the example applications use
  to demonstrate that the architecture computes correct results.

Programmed-tile caching
-----------------------
PCM programming is the expensive, non-volatile step of the functional path:
each weight tile costs a quantisation pass plus per-cell programming energy
and time.  ``linear`` therefore keeps an LRU cache of *programmed tile
plans*, keyed by the weight matrix's content (shape + byte digest).  The
first call with a given weight matrix derives the tile grid, pads and
programs one :class:`~repro.crossbar.signed.SignedCrossbarEngine` per tile,
and every later call with the same weights — every image of a batch, every
repeated inference — reuses the programmed engines without touching the PCM
again.  Programming statistics survive cache eviction and are reported by
:meth:`functional_statistics`.  Inputs stream through the cached tiles as
batched GEMMs (:meth:`SignedCrossbarEngine.matmul`), so a whole batch of
vectors per tile costs one BLAS call instead of a Python loop.

Multi-core sharded execution
----------------------------
The per-tile GEMMs of a plan are dispatched through a
:class:`~repro.core.sharding.ShardedExecutionEngine`, which assigns tile ``i``
to crossbar core ``i % num_cores`` (the same static round-robin the analytical
:class:`~repro.crossbar.dual_core.DualCoreCrossbar` schedule uses) and can run
the shards on a thread pool (``execution="thread"`` or an integer worker
count).  Each tile's noise generator is derived from an independent
``SeedSequence`` child keyed by the weight content and tile index, so sharded
execution is bitwise identical to serial execution even with a noise model,
and noisy outputs do not depend on the order in which tile plans were built.
Per-core tile counts and busy-time estimates are accumulated into
:meth:`functional_statistics`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.concurrency import make_rlock, thread_shared
from repro.config.chip import ChipConfig
from repro.config.presets import optimal_chip
from repro.core.sharding import ShardedExecutionEngine, WorkerSpec
from repro.crossbar.dual_core import ProgrammingJob
from repro.crossbar.noise import CrossbarNoiseModel
from repro.crossbar.signed import SignedCrossbarEngine
from repro.errors import SimulationError
from repro.nn.im2col import conv_weights_matrix, im2col_matrix
from repro.nn.network import Network
from repro.perf.metrics import PerformanceMetrics, evaluate_runtime
from repro.scalesim.runtime import NetworkRuntime
from repro.scalesim.simulator import CrossbarDataflowSimulator


@dataclass
class _ProgrammedTile:
    """One programmed crossbar tile of a larger weight matrix."""

    engine: SignedCrossbarEngine
    k_start: int
    k_end: int
    n_start: int
    n_end: int

    @property
    def tile_rows(self) -> int:
        return self.k_end - self.k_start

    @property
    def tile_cols(self) -> int:
        return self.n_end - self.n_start


@dataclass
class _TilePlan:
    """The full programmed tiling of one weight matrix."""

    k: int
    n: int
    tiles: List[_ProgrammedTile]


@thread_shared
class OpticalCrossbarAccelerator:
    """A single optical crossbar accelerator chip.

    Parameters
    ----------
    config:
        Chip design point; defaults to the paper's optimised 128×128
        dual-core configuration.
    noise_model:
        Optional impairment model for the functional datapath.
    seed:
        Random seed for the functional datapath's noise injection.
    max_cached_weight_plans:
        Upper bound on the number of distinct weight matrices whose
        programmed tile plans are kept alive (LRU eviction beyond it).
    execution:
        Worker-pool specification for multi-core sharded execution of the
        per-tile GEMMs: ``"serial"`` (default, inline), ``"thread"`` (one
        worker thread per crossbar core) or a positive integer worker count.
        Results are bitwise identical across all settings.
    """

    def __init__(
        self,
        config: Optional[ChipConfig] = None,
        noise_model: Optional[CrossbarNoiseModel] = None,
        seed: int = 0,
        max_cached_weight_plans: int = 64,
        execution: WorkerSpec = "serial",
    ) -> None:
        self.config = config or optimal_chip()
        self.noise_model = noise_model
        self._seed_sequence = np.random.SeedSequence(seed)
        self.sharding = ShardedExecutionEngine(
            self.config.num_cores, self.config.mac_clock_hz, workers=execution
        )
        self._simulator = CrossbarDataflowSimulator(self.config)
        if max_cached_weight_plans < 1:
            raise SimulationError(
                f"max_cached_weight_plans must be >= 1, got {max_cached_weight_plans}"
            )
        self._max_cached_weight_plans = max_cached_weight_plans
        # Serialises tile-plan cache mutation and statistics accumulation so
        # concurrent `linear` calls (thread-pool serving, sharded workers)
        # cannot lose counter increments or corrupt the LRU order.  GEMM
        # execution itself happens outside the lock.  Scope: with a noise
        # model, concurrent `linear` calls on one accelerator interleave the
        # per-tile generator state in arrival order, so noisy outputs are not
        # reproducible across such runs (counters stay exact); callers that
        # need reproducible noise must not share one accelerator across
        # threads — the serving pool's replicas are checked out exclusively
        # for this reason.
        self._stats_lock = make_rlock("OpticalCrossbarAccelerator._stats_lock")
        self._tile_plans: "OrderedDict[Tuple, _TilePlan]" = OrderedDict()
        self._functional_stats = {
            "programming_events": 0,
            "programming_energy_j": 0.0,
            "programming_time_s": 0.0,
            "tile_cache_hits": 0,
            "tile_cache_misses": 0,
            "tile_cache_evictions": 0,
            "sharded_dispatches": 0,
        }
        self._per_core_tile_dispatches = [0] * self.config.num_cores
        self._per_core_busy_time_s = [0.0] * self.config.num_cores

    # ------------------------------------------------------------------ performance
    def runtime_specs(self, network: Network) -> NetworkRuntime:
        """Step-1 runtime specification of ``network`` on this chip."""
        return self._simulator.simulate(network)

    def evaluate(self, network: Network) -> PerformanceMetrics:
        """Full performance evaluation (IPS, IPS/W, power, area) of ``network``."""
        return evaluate_runtime(self.runtime_specs(network))

    def peak_tops(self) -> float:
        """Peak throughput of the chip in TOPS."""
        return self.config.peak_tops

    # ------------------------------------------------------------------ functional
    def _weight_key(self, weights: np.ndarray) -> Tuple:
        """Content-identity key of a weight matrix (shape + byte digest)."""
        contiguous = np.ascontiguousarray(weights)
        digest = hashlib.sha1(contiguous.tobytes()).digest()
        return (weights.shape, digest)

    def _tile_seed_sequences(self, key: Tuple, num_tiles: int) -> List[np.random.SeedSequence]:
        """Independent per-tile child seeds for the plan identified by ``key``.

        The children are spawned from a sequence keyed by the accelerator seed
        *and* the weight matrix's content key, so each tile's noise stream
        depends only on (seed, weights, tile index) — not on how many plans
        were built before, nor on which thread executes the tile.  This is
        what makes noisy sharded execution bitwise identical to serial
        execution.
        """
        shape, digest = key
        plan_sequence = np.random.SeedSequence(
            entropy=self._seed_sequence.entropy,
            spawn_key=tuple(int(dim) for dim in shape) + tuple(digest),
        )
        return plan_sequence.spawn(num_tiles)

    def _build_tile_plan_locked(self, weights: np.ndarray, key: Tuple) -> _TilePlan:
        """Derive the tile grid for ``weights`` and program every tile once."""
        k, n = weights.shape
        rows, columns = self.config.rows, self.config.columns
        spans = [
            (k_start, min(k_start + rows, k), n_start, min(n_start + columns, n))
            for k_start in range(0, k, rows)
            for n_start in range(0, n, columns)
        ]
        tile_seeds = self._tile_seed_sequences(key, len(spans))
        tiles: List[_ProgrammedTile] = []
        for (k_start, k_end, n_start, n_end), tile_seed in zip(spans, tile_seeds):
            tile = np.zeros((rows, columns))
            tile[: k_end - k_start, : n_end - n_start] = weights[
                k_start:k_end, n_start:n_end
            ]
            engine = SignedCrossbarEngine(
                rows,
                columns,
                technology=self.config.technology,
                noise_model=self.noise_model,
                rng=np.random.default_rng(tile_seed),
            )
            engine.program(tile)
            stats = engine.statistics()
            self._functional_stats["programming_events"] += int(
                stats["programming_events"]
            )
            self._functional_stats["programming_energy_j"] += stats[
                "programming_energy_j"
            ]
            self._functional_stats["programming_time_s"] += stats[
                "programming_time_s"
            ]
            tiles.append(_ProgrammedTile(engine, k_start, k_end, n_start, n_end))
        return _TilePlan(k=k, n=n, tiles=tiles)

    def _programmed_tile_plan(self, weights: np.ndarray) -> _TilePlan:
        """Fetch (or build and cache) the programmed tile plan for ``weights``."""
        key = self._weight_key(weights)
        with self._stats_lock:
            plan = self._tile_plans.get(key)
            if plan is not None:
                self._tile_plans.move_to_end(key)
                self._functional_stats["tile_cache_hits"] += 1
                return plan
            self._functional_stats["tile_cache_misses"] += 1
            plan = self._build_tile_plan_locked(weights, key)
            self._tile_plans[key] = plan
            while len(self._tile_plans) > self._max_cached_weight_plans:
                self._tile_plans.popitem(last=False)
                self._functional_stats["tile_cache_evictions"] += 1
            return plan

    def clear_functional_cache(self) -> None:
        """Drop every cached programmed tile plan (statistics are kept)."""
        with self._stats_lock:
            self._tile_plans.clear()

    def functional_statistics(self) -> Dict[str, object]:
        """Aggregate PCM programming, tile-cache and sharding statistics.

        ``programming_events`` counts full-array programming passes across
        every engine ever created by :meth:`linear` (eviction does not erase
        history), so repeated inference with the same weights leaves the
        count unchanged.  ``per_core_tile_dispatches`` and
        ``per_core_busy_time_s`` accumulate, per crossbar core, the number of
        tile GEMMs dispatched and the modelled program+compute busy time —
        consistent with the analytical
        :class:`~repro.crossbar.dual_core.DualCoreCrossbar` schedule (see
        :meth:`analytical_schedule`).
        """
        with self._stats_lock:
            stats: Dict[str, object] = dict(self._functional_stats)
            stats["per_core_tile_dispatches"] = tuple(self._per_core_tile_dispatches)
            stats["per_core_busy_time_s"] = tuple(self._per_core_busy_time_s)
            return stats

    def register_metrics(self, registry, labels: Optional[Dict[str, str]] = None) -> None:
        """Export :meth:`functional_statistics` into a metrics registry.

        Metric names match the worker pool's accelerator exporter
        (:meth:`repro.serve.workers.EngineWorkerPool.register_metrics`); the
        registry merges same-named families, so a standalone accelerator and
        a serving fleet land in the same time series.
        """
        label_set = dict(labels or {})

        def _collect():
            stats = self.functional_statistics()
            families = [
                {
                    "name": "repro_accelerator_programming_events_total",
                    "type": "counter",
                    "help": "Full-array PCM programming passes.",
                    "samples": [(label_set, float(stats["programming_events"]))],
                },
                {
                    "name": "repro_accelerator_programming_energy_joules_total",
                    "type": "counter",
                    "help": "Modelled PCM programming energy.",
                    "samples": [(label_set, float(stats["programming_energy_j"]))],
                },
                {
                    "name": "repro_accelerator_programming_seconds_total",
                    "type": "counter",
                    "help": "Modelled PCM programming time.",
                    "samples": [(label_set, float(stats["programming_time_s"]))],
                },
                {
                    "name": "repro_accelerator_sharded_dispatches_total",
                    "type": "counter",
                    "help": "Multi-core sharded GEMM dispatches.",
                    "samples": [(label_set, float(stats["sharded_dispatches"]))],
                },
                {
                    "name": "repro_accelerator_tile_cache_total",
                    "type": "counter",
                    "help": "Programmed tile-plan cache events.",
                    "samples": [
                        (
                            {**label_set, "event": event},
                            float(stats[f"tile_cache_{key}"]),
                        )
                        for event, key in (
                            ("hit", "hits"),
                            ("miss", "misses"),
                            ("eviction", "evictions"),
                        )
                    ],
                },
            ]
            dispatches = stats["per_core_tile_dispatches"]
            busy = stats["per_core_busy_time_s"]
            if dispatches:
                families.append(
                    {
                        "name": "repro_accelerator_core_tile_dispatches_total",
                        "type": "counter",
                        "help": "Tile GEMMs dispatched per crossbar core.",
                        "samples": [
                            ({**label_set, "core": str(core)}, float(value))
                            for core, value in enumerate(dispatches)
                        ],
                    }
                )
            if busy:
                families.append(
                    {
                        "name": "repro_accelerator_core_busy_seconds_total",
                        "type": "counter",
                        "help": "Modelled busy time per crossbar core.",
                        "samples": [
                            ({**label_set, "core": str(core)}, float(value))
                            for core, value in enumerate(busy)
                        ],
                    }
                )
            return families

        registry.register_collector(_collect)

    def _analytics_plan(self, weights: np.ndarray) -> _TilePlan:
        """Tile plan for analytics queries, free of datapath side effects.

        Reuses a cached plan without touching the LRU order or the hit/miss
        counters.  For uncached weights a throwaway plan is built *outside*
        the cache (so an analytics query can never evict a hot inference
        plan) and the programming statistics it would have accumulated are
        restored — the query describes a hypothetical schedule, it is not
        datapath traffic.  Per-tile seeds are content-keyed, so the throwaway
        plan is identical to the one :meth:`linear` would build.
        """
        key = self._weight_key(weights)
        with self._stats_lock:
            plan = self._tile_plans.get(key)
            if plan is not None:
                return plan
            snapshot = dict(self._functional_stats)
            try:
                return self._build_tile_plan_locked(weights, key)
            finally:
                self._functional_stats.update(snapshot)

    def programming_jobs(self, weights: np.ndarray, num_vectors: int) -> List[ProgrammingJob]:
        """Analytical per-tile job sequence for ``weights``.

        Derives the tile plan and converts it into the
        :class:`~repro.crossbar.dual_core.ProgrammingJob` list consumed by
        :class:`~repro.crossbar.dual_core.DualCoreCrossbar`, so the functional
        core assignment can be cross-checked against the analytical schedule.
        Leaves the tile cache and functional statistics untouched.
        """
        plan = self._analytics_plan(np.asarray(weights, dtype=float))
        return self.sharding.programming_jobs(plan, num_vectors)

    def analytical_schedule(self, weights: np.ndarray, num_vectors: int) -> Dict[str, float]:
        """:meth:`DualCoreCrossbar.summarize` of the tile plan for ``weights``."""
        plan = self._analytics_plan(np.asarray(weights, dtype=float))
        return self.sharding.schedule_summary(plan, num_vectors)

    def linear(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Compute ``inputs @ weights`` on the functional crossbar, tile by tile.

        Parameters
        ----------
        weights:
            Signed weight matrix of shape (k, n).
        inputs:
            Input matrix of shape (num_vectors, k) or vector of shape (k,).

        Returns
        -------
        numpy.ndarray
            Result of shape (num_vectors, n) (or (n,) for a single vector),
            computed with INT6 quantisation of weights, inputs and outputs.

        The weight matrix is programmed at most once (see module docstring);
        the input batch streams through the cached tiles as GEMMs, sharded
        across the chip's crossbar cores by the configured ``execution``
        policy (bitwise identical results for every policy).
        """
        weights = np.asarray(weights, dtype=float)
        inputs = np.asarray(inputs, dtype=float)
        if weights.ndim != 2:
            raise SimulationError(f"weights must be 2-D, got shape {weights.shape}")
        single_vector = inputs.ndim == 1
        if single_vector:
            inputs = inputs[None, :]
        if inputs.ndim != 2 or inputs.shape[1] != weights.shape[0]:
            raise SimulationError(
                f"inputs of shape {inputs.shape} are incompatible with weights of "
                f"shape {weights.shape}"
            )

        plan = self._programmed_tile_plan(weights)
        result, report = self.sharding.execute(plan, inputs, self.config.rows)
        with self._stats_lock:
            self._functional_stats["sharded_dispatches"] += 1
            for core in range(self.config.num_cores):
                self._per_core_tile_dispatches[core] += report.core_tile_counts[core]
                self._per_core_busy_time_s[core] += report.core_busy_time_s[core]
        return result[0] if single_vector else result

    def conv2d(
        self,
        feature_map: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> np.ndarray:
        """Run a 2-D convolution on the functional crossbar via im2col.

        Parameters
        ----------
        feature_map:
            Input of shape (H, W, C_in), or a batch of shape (B, H, W, C_in).
        weights:
            Filters of shape (k, k, C_in, C_out).

        A batched input unrolls every image's receptive fields into one
        im2col matrix and runs them through :meth:`linear` in a single pass,
        programming the filter tiles exactly once for the whole batch.
        """
        feature_map = np.asarray(feature_map, dtype=float)
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 4:
            raise SimulationError(
                f"conv2d weights must have shape (k, k, C_in, C_out), "
                f"got shape {weights.shape}"
            )
        if weights.shape[0] != weights.shape[1]:
            raise SimulationError(
                f"conv2d supports square kernels only, "
                f"got {weights.shape[0]}x{weights.shape[1]}"
            )
        if feature_map.ndim not in (3, 4):
            raise SimulationError(
                f"conv2d feature_map must have shape (H, W, C_in) or "
                f"(B, H, W, C_in), got shape {feature_map.shape}"
            )
        if feature_map.shape[-1] != weights.shape[2]:
            raise SimulationError(
                f"conv2d feature_map has {feature_map.shape[-1]} channels but "
                f"weights expect {weights.shape[2]}"
            )
        kernel = weights.shape[0]
        unrolled = im2col_matrix(feature_map, kernel, stride, padding)
        flat_weights = conv_weights_matrix(weights)
        batched = feature_map.ndim == 4
        height, width = feature_map.shape[1:3] if batched else feature_map.shape[:2]
        out_h = (height + 2 * padding - kernel) // stride + 1
        out_w = (width + 2 * padding - kernel) // stride + 1
        if batched:
            num_images, patches, patch_len = unrolled.shape
            product = self.linear(
                flat_weights, unrolled.reshape(num_images * patches, patch_len)
            )
            return product.reshape(num_images, out_h, out_w, flat_weights.shape[1])
        product = self.linear(flat_weights, unrolled)
        return product.reshape(out_h, out_w, flat_weights.shape[1])

    # ------------------------------------------------------------------ report
    def describe(self) -> Dict[str, float]:
        """Key structural parameters of the chip."""
        return {
            "rows": self.config.rows,
            "columns": self.config.columns,
            "num_cores": self.config.num_cores,
            "batch_size": self.config.batch_size,
            "mac_clock_hz": self.config.mac_clock_hz,
            "sram_total_mb": self.config.sram.total_mb,
            "peak_tops": self.peak_tops(),
        }
