"""User-facing façade: :class:`OpticalCrossbarAccelerator`.

An ``OpticalCrossbarAccelerator`` ties together, for one chip design point:

* the performance path — dataflow simulation plus power/area models
  (:meth:`evaluate`, :meth:`runtime_specs`), and
* the functional path — signed GEMMs executed on the INT6 functional crossbar
  (:meth:`linear`, :meth:`conv2d`), which is what the example applications use
  to demonstrate that the architecture computes correct results.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config.chip import ChipConfig
from repro.config.presets import optimal_chip
from repro.crossbar.noise import CrossbarNoiseModel
from repro.crossbar.signed import SignedCrossbarEngine
from repro.errors import SimulationError
from repro.nn.im2col import conv_weights_matrix, im2col_matrix
from repro.nn.network import Network
from repro.perf.metrics import PerformanceMetrics, evaluate_runtime
from repro.scalesim.runtime import NetworkRuntime
from repro.scalesim.simulator import CrossbarDataflowSimulator


class OpticalCrossbarAccelerator:
    """A single optical crossbar accelerator chip.

    Parameters
    ----------
    config:
        Chip design point; defaults to the paper's optimised 128×128
        dual-core configuration.
    noise_model:
        Optional impairment model for the functional datapath.
    seed:
        Random seed for the functional datapath's noise injection.
    """

    def __init__(
        self,
        config: Optional[ChipConfig] = None,
        noise_model: Optional[CrossbarNoiseModel] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or optimal_chip()
        self.noise_model = noise_model
        self._rng = np.random.default_rng(seed)
        self._simulator = CrossbarDataflowSimulator(self.config)

    # ------------------------------------------------------------------ performance
    def runtime_specs(self, network: Network) -> NetworkRuntime:
        """Step-1 runtime specification of ``network`` on this chip."""
        return self._simulator.simulate(network)

    def evaluate(self, network: Network) -> PerformanceMetrics:
        """Full performance evaluation (IPS, IPS/W, power, area) of ``network``."""
        return evaluate_runtime(self.runtime_specs(network))

    def peak_tops(self) -> float:
        """Peak throughput of the chip in TOPS."""
        return self.config.peak_tops

    # ------------------------------------------------------------------ functional
    def _tiled_engine(self, rows: int, columns: int) -> SignedCrossbarEngine:
        return SignedCrossbarEngine(
            rows,
            columns,
            technology=self.config.technology,
            noise_model=self.noise_model,
            rng=self._rng,
        )

    def linear(self, weights: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Compute ``inputs @ weights`` on the functional crossbar, tile by tile.

        Parameters
        ----------
        weights:
            Signed weight matrix of shape (k, n).
        inputs:
            Input matrix of shape (num_vectors, k) or vector of shape (k,).

        Returns
        -------
        numpy.ndarray
            Result of shape (num_vectors, n) (or (n,) for a single vector),
            computed with INT6 quantisation of weights, inputs and outputs.
        """
        weights = np.asarray(weights, dtype=float)
        inputs = np.asarray(inputs, dtype=float)
        if weights.ndim != 2:
            raise SimulationError(f"weights must be 2-D, got shape {weights.shape}")
        single_vector = inputs.ndim == 1
        if single_vector:
            inputs = inputs[None, :]
        if inputs.ndim != 2 or inputs.shape[1] != weights.shape[0]:
            raise SimulationError(
                f"inputs of shape {inputs.shape} are incompatible with weights of "
                f"shape {weights.shape}"
            )

        k, n = weights.shape
        rows, columns = self.config.rows, self.config.columns
        num_vectors = inputs.shape[0]
        result = np.zeros((num_vectors, n))

        for k_start in range(0, k, rows):
            k_end = min(k_start + rows, k)
            tile_rows = k_end - k_start
            for n_start in range(0, n, columns):
                n_end = min(n_start + columns, n)
                tile_cols = n_end - n_start

                tile = np.zeros((rows, columns))
                tile[:tile_rows, :tile_cols] = weights[k_start:k_end, n_start:n_end]
                engine = self._tiled_engine(rows, columns)
                engine.program(tile)

                padded_inputs = np.zeros((num_vectors, rows))
                padded_inputs[:, :tile_rows] = inputs[:, k_start:k_end]
                partial = engine.matmul(padded_inputs)
                result[:, n_start:n_end] += partial[:, :tile_cols]

        return result[0] if single_vector else result

    def conv2d(
        self,
        feature_map: np.ndarray,
        weights: np.ndarray,
        stride: int = 1,
        padding: int = 0,
    ) -> np.ndarray:
        """Run a 2-D convolution on the functional crossbar via im2col.

        Parameters
        ----------
        feature_map:
            Input of shape (H, W, C_in).
        weights:
            Filters of shape (k, k, C_in, C_out).
        """
        unrolled = im2col_matrix(feature_map, np.asarray(weights).shape[0], stride, padding)
        flat_weights = conv_weights_matrix(weights)
        product = self.linear(flat_weights, unrolled)
        feature_map = np.asarray(feature_map, dtype=float)
        kernel = np.asarray(weights).shape[0]
        out_h = (feature_map.shape[0] + 2 * padding - kernel) // stride + 1
        out_w = (feature_map.shape[1] + 2 * padding - kernel) // stride + 1
        return product.reshape(out_h, out_w, flat_weights.shape[1])

    # ------------------------------------------------------------------ report
    def describe(self) -> Dict[str, float]:
        """Key structural parameters of the chip."""
        return {
            "rows": self.config.rows,
            "columns": self.config.columns,
            "num_cores": self.config.num_cores,
            "batch_size": self.config.batch_size,
            "mac_clock_hz": self.config.mac_clock_hz,
            "sram_total_mb": self.config.sram.total_mb,
            "peak_tops": self.peak_tops(),
        }
