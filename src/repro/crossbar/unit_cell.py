"""Device-level unit-cell model.

A unit cell (Fig. 3 of the paper) consists of

* an input directional coupler tapping a column-dependent fraction of the row
  field into a bended waveguide,
* the PCM-covered section multiplying the field by the stored weight,
* an output directional coupler injecting the product into the column
  waveguide, and
* an MMI crossing where the remaining row field crosses the column waveguide,
* a small thermal phase shifter on the column waveguide for calibration.

Composing unit cells device by device is slow but exact; the test-suite uses
small device-level arrays to validate the analytical
:class:`~repro.crossbar.array.CrossbarArray` model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.config.technology import TechnologyConfig
from repro.errors import SimulationError
from repro.photonics.coupler import DirectionalCoupler
from repro.photonics.mmi import MMICrossing
from repro.photonics.pcm import PCMCell
from repro.photonics.phase_shifter import ThermalPhaseShifter


@dataclass
class UnitCell:
    """One PCM crossbar unit cell composed of explicit device models.

    Parameters
    ----------
    input_coupling:
        Power cross-coupling ratio of the input DC (column dependent).
    output_coupling:
        Power cross-coupling ratio of the output DC (row dependent).
    technology:
        Device constants used to build the PCM cell and crossing.
    lossless:
        When True (default) the couplers and crossing are treated as lossless,
        which is the assumption under which Eq. (1) holds exactly; when False
        the devices' excess losses are included.
    """

    input_coupling: float
    output_coupling: float
    technology: TechnologyConfig = field(default_factory=TechnologyConfig)
    lossless: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.input_coupling <= 1.0:
            raise SimulationError(
                f"input_coupling must be in [0, 1], got {self.input_coupling}"
            )
        if not 0.0 <= self.output_coupling <= 1.0:
            raise SimulationError(
                f"output_coupling must be in [0, 1], got {self.output_coupling}"
            )
        excess = 0.0 if self.lossless else self.technology.directional_coupler_excess_loss_db
        crossing_loss = 0.0 if self.lossless else self.technology.mmi_crossing_loss_db
        self.input_dc = DirectionalCoupler(kappa=self.input_coupling, excess_loss_db=excess)
        self.output_dc = DirectionalCoupler(kappa=self.output_coupling, excess_loss_db=excess)
        self.crossing = MMICrossing(insertion_loss_db=crossing_loss)
        self.pcm = PCMCell(
            levels=self.technology.pcm_levels,
            min_transmission=self.technology.pcm_min_transmission,
            max_transmission=self.technology.pcm_max_transmission,
            programming_energy_j=self.technology.pcm_programming_energy_j,
            programming_time_s=self.technology.pcm_programming_time_s,
            insertion_loss_db=0.0 if self.lossless else self.technology.pcm_insertion_loss_db,
        )
        self.phase_shifter = ThermalPhaseShifter(
            insertion_loss_db=0.0 if self.lossless else self.technology.phase_shifter_insertion_loss_db
        )

    # ------------------------------------------------------------------ program
    def program(self, weight: float) -> float:
        """Program the cell's PCM to a weight in [0, 1]; returns the quantised value."""
        return self.pcm.program(weight)["transmission"]

    @property
    def weight(self) -> float:
        """The currently programmed (quantised) weight."""
        return self.pcm.transmission

    # ------------------------------------------------------------------ propagate
    def propagate(
        self, row_field_in: float, column_field_in: float
    ) -> Tuple[float, float]:
        """Propagate the row and column fields through the cell (magnitudes).

        Parameters
        ----------
        row_field_in:
            E-field magnitude arriving on the row waveguide from the left.
        column_field_in:
            E-field magnitude arriving on the column waveguide from above.

        Returns
        -------
        (row_field_out, column_field_out):
            Fields leaving to the right (next column) and below (next row).
        """
        if row_field_in < 0 or column_field_in < 0:
            raise SimulationError("field magnitudes must be >= 0")

        # Input DC: tap a fraction of the row field into the bended waveguide.
        tapped = row_field_in * self.input_dc.cross_field * self.input_dc.excess_field
        row_through = row_field_in * self.input_dc.through_field * self.input_dc.excess_field

        # The through light crosses the column waveguide in the MMI crossing.
        row_field_out = row_through * self.crossing.field_transmission

        # The tapped light is attenuated by the PCM weight.
        product = tapped * self.pcm.transmission

        # Output DC: the column field passes through while the product is
        # injected from the cross port; with matched phases the magnitudes add.
        dc = self.output_dc
        column_field_out = (
            column_field_in * dc.through_field * dc.excess_field
            + product * dc.cross_field * dc.excess_field
        )
        column_field_out *= self.phase_shifter.field_transmission
        return row_field_out, column_field_out


def build_device_level_array(
    weights: np.ndarray,
    technology: Optional[TechnologyConfig] = None,
    lossless: bool = True,
) -> np.ndarray:
    """Build an (N, M) grid of :class:`UnitCell` programmed with ``weights``."""
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 2:
        raise SimulationError(f"weights must be 2-D, got shape {weights.shape}")
    technology = technology or TechnologyConfig()
    rows, columns = weights.shape

    from repro.crossbar.array import design_input_coupling, design_output_coupling

    k_in = design_input_coupling(columns)
    k_out = design_output_coupling(rows)
    cells = np.empty((rows, columns), dtype=object)
    for i in range(rows):
        for j in range(columns):
            cell = UnitCell(
                input_coupling=float(k_in[j]),
                output_coupling=float(k_out[i]),
                technology=technology,
                lossless=lossless,
            )
            cell.program(float(weights[i, j]))
            cells[i, j] = cell
    return cells


def device_level_matvec(
    cells: np.ndarray, row_inputs: np.ndarray
) -> np.ndarray:
    """Propagate row input fields through a device-level cell grid.

    ``row_inputs`` are the E-field magnitudes entering each row (already
    including the splitter tree's ``1/sqrt(N)``).  Returns the column output
    fields at the bottom of the array.
    """
    rows, columns = cells.shape
    row_inputs = np.asarray(row_inputs, dtype=float)
    if row_inputs.shape != (rows,):
        raise SimulationError(
            f"row_inputs must have shape ({rows},), got {row_inputs.shape}"
        )
    column_fields = np.zeros(columns)
    for i in range(rows):
        row_field = row_inputs[i]
        for j in range(columns):
            row_field, column_fields[j] = cells[i, j].propagate(row_field, column_fields[j])
    return column_fields
