"""Phase-error calibration via the per-cell thermal phase shifters.

The coherent column summation requires the optical paths of all contributing
unit cells to be phase matched.  Fabrication variations introduce per-cell
phase errors; the paper proposes a small thermal phase shifter in each unit
cell to trim them out.  :class:`PhaseCalibrator` models that calibration loop:

* sample random per-cell phase errors,
* compute the heater settings that cancel them (up to a configurable
  residual, modelling finite DAC resolution of the heater drivers),
* report the residual coherence loss and the total heater power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import DeviceModelError
from repro.photonics.phase_shifter import ThermalPhaseShifter


@dataclass
class CalibrationResult:
    """Outcome of one calibration run."""

    initial_phase_errors_rad: np.ndarray
    heater_settings_rad: np.ndarray
    residual_errors_rad: np.ndarray
    heater_power_w: float

    @property
    def initial_coherence(self) -> float:
        """Average cos(phase error) before calibration."""
        return float(np.mean(np.cos(self.initial_phase_errors_rad)))

    @property
    def residual_coherence(self) -> float:
        """Average cos(phase error) after calibration."""
        return float(np.mean(np.cos(self.residual_errors_rad)))

    @property
    def residual_phase_std_rad(self) -> float:
        """Standard deviation of the residual phase error (radians)."""
        return float(np.std(self.residual_errors_rad))


class PhaseCalibrator:
    """Calibrates per-cell phase errors with thermal phase shifters.

    Parameters
    ----------
    rows, columns:
        Array dimensions.
    phase_shifter:
        Heater model (power per π, range).
    heater_resolution_bits:
        Resolution of the heater-driver DAC; the residual error after
        calibration is the quantisation error of this DAC.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        phase_shifter: Optional[ThermalPhaseShifter] = None,
        heater_resolution_bits: int = 8,
    ) -> None:
        if rows < 1 or columns < 1:
            raise DeviceModelError(f"array dimensions must be >= 1, got {rows}x{columns}")
        if heater_resolution_bits < 1:
            raise DeviceModelError(
                f"heater_resolution_bits must be >= 1, got {heater_resolution_bits}"
            )
        self.rows = rows
        self.columns = columns
        self.phase_shifter = phase_shifter or ThermalPhaseShifter()
        self.heater_resolution_bits = heater_resolution_bits

    # ------------------------------------------------------------------ model
    def sample_phase_errors(
        self, std_rad: float, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Sample per-cell fabrication phase errors (radians)."""
        if std_rad < 0:
            raise DeviceModelError(f"std_rad must be >= 0, got {std_rad}")
        rng = rng if rng is not None else np.random.default_rng(0)
        return rng.normal(0.0, std_rad, size=(self.rows, self.columns))

    def heater_quantum_rad(self) -> float:
        """Smallest heater phase step the driver DAC can command (radians)."""
        return self.phase_shifter.max_phase_rad / (1 << self.heater_resolution_bits)

    def calibrate(self, phase_errors_rad: np.ndarray) -> CalibrationResult:
        """Compute heater settings cancelling ``phase_errors_rad``.

        The ideal correction for an error φ is the *minimal* signed phase
        ``-φ`` wrapped into [-π, π] (each heater sits on a pre-biased path, so
        it only has to supply the small residual trim, not a full 2π).  The
        commanded value is rounded to the heater DAC grid, leaving a small
        residual, and the heater power is proportional to the magnitude of
        the commanded trim.
        """
        phase_errors_rad = np.asarray(phase_errors_rad, dtype=float)
        if phase_errors_rad.shape != (self.rows, self.columns):
            raise DeviceModelError(
                f"phase error matrix must have shape ({self.rows}, {self.columns}), "
                f"got {phase_errors_rad.shape}"
            )
        quantum = self.heater_quantum_rad()
        # Minimal signed correction in [-pi, pi].
        ideal = -(np.mod(phase_errors_rad + np.pi, 2.0 * np.pi) - np.pi)
        commanded = np.round(ideal / quantum) * quantum
        residual = np.mod(phase_errors_rad + commanded + np.pi, 2.0 * np.pi) - np.pi

        heater_power = float(
            np.sum(
                self.phase_shifter.power_per_pi_w * np.abs(commanded) / np.pi
            )
        )
        return CalibrationResult(
            initial_phase_errors_rad=phase_errors_rad,
            heater_settings_rad=commanded,
            residual_errors_rad=residual,
            heater_power_w=heater_power,
        )

    def calibration_report(self, std_rad: float, seed: int = 0) -> Dict[str, float]:
        """Convenience: sample errors, calibrate, and summarise the outcome."""
        rng = np.random.default_rng(seed)
        errors = self.sample_phase_errors(std_rad, rng)
        result = self.calibrate(errors)
        return {
            "initial_coherence": result.initial_coherence,
            "residual_coherence": result.residual_coherence,
            "residual_phase_std_rad": result.residual_phase_std_rad,
            "heater_power_w": result.heater_power_w,
        }
