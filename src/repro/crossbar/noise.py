"""Noise and impairment models for the functional crossbar.

Analog optical computing is limited by several impairments that the paper
acknowledges (Section III-A.2) without modelling in detail:

* residual *phase errors* between unit-cell paths reduce the coherent sum;
* *amplitude noise* (laser RIN, shot noise, TIA noise) perturbs the detected
  value;
* *PCM programming variability* perturbs the stored weights.

:class:`CrossbarNoiseModel` injects these impairments into the analytical
array model so their effect on INT6 accuracy can be studied (see the
``precision`` ablation benchmark and the noise examples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceModelError


@dataclass(frozen=True)
class CrossbarNoiseModel:
    """Impairment magnitudes applied by the functional crossbar.

    Parameters
    ----------
    phase_error_std_rad:
        Standard deviation of the residual per-cell phase error (radians).
        The coherent sum of N contributions with phase errors φ_i is reduced
        by the factor ``mean(cos φ_i)`` on average and acquires a relative
        fluctuation ~ ``phase_error_std / sqrt(N)``.
    relative_amplitude_noise:
        RMS multiplicative amplitude noise on each column field.
    additive_noise_floor:
        RMS additive noise on each column field, relative to the full-scale
        field (models receiver/ADC input-referred noise).
    weight_programming_std:
        RMS error of a programmed PCM transmission (absolute, in [0, 1] units).
    """

    phase_error_std_rad: float = 0.0
    relative_amplitude_noise: float = 0.0
    additive_noise_floor: float = 0.0
    weight_programming_std: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "phase_error_std_rad",
            "relative_amplitude_noise",
            "additive_noise_floor",
            "weight_programming_std",
        ):
            if getattr(self, name) < 0:
                raise DeviceModelError(f"{name} must be >= 0")

    # ------------------------------------------------------------------ helpers
    @property
    def is_ideal(self) -> bool:
        """True when every impairment is zero."""
        return (
            self.phase_error_std_rad == 0.0
            and self.relative_amplitude_noise == 0.0
            and self.additive_noise_floor == 0.0
            and self.weight_programming_std == 0.0
        )

    @property
    def is_field_deterministic(self) -> bool:
        """True when :meth:`apply_to_fields` is the identity (no random draws).

        Weight programming noise does not enter the field datapath, so a
        weights-only model still leaves the compute path fully deterministic.
        """
        return (
            self.phase_error_std_rad == 0.0
            and self.relative_amplitude_noise == 0.0
            and self.additive_noise_floor == 0.0
        )

    def coherence_factor(self) -> float:
        """Average reduction of the coherent sum due to phase errors.

        For Gaussian phase errors with standard deviation σ the expected value
        of ``cos(φ)`` is ``exp(-σ²/2)``.
        """
        return float(np.exp(-0.5 * self.phase_error_std_rad**2))

    # ------------------------------------------------------------------ apply
    def apply_to_weights(
        self, weights: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Perturb a programmed weight matrix with programming variability.

        With ``weight_programming_std == 0`` the input array is returned
        unchanged (no copy); callers must treat the result as read-only.
        """
        weights = np.asarray(weights, dtype=float)
        if self.weight_programming_std == 0.0:
            return weights
        noise = rng.normal(0.0, self.weight_programming_std, size=weights.shape)
        return np.clip(weights + noise, 0.0, 1.0)

    def apply_to_fields(
        self, fields: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Apply phase-error shrinkage, multiplicative and additive noise to fields.

        ``fields`` may be a 1-D column-field vector or a 2-D batch of shape
        (num_vectors, columns).  For a batch, the additive noise floor is
        referenced to each vector's own full-scale field (matching the
        per-vector semantics of streaming the batch one vector at a time).
        """
        fields = np.asarray(fields, dtype=float)
        result = fields * self.coherence_factor()
        if self.relative_amplitude_noise > 0.0:
            gain = rng.normal(1.0, self.relative_amplitude_noise, size=fields.shape)
            result = result * gain
        if self.additive_noise_floor > 0.0 and fields.size:
            if fields.ndim == 2:
                full_scale = np.max(np.abs(fields), axis=1, keepdims=True)
            else:
                full_scale = float(np.max(np.abs(fields)))
            noise = rng.normal(
                0.0, self.additive_noise_floor, size=fields.shape
            ) * full_scale
            result = result + noise
        return result

    # ------------------------------------------------------------------ presets
    @classmethod
    def ideal(cls) -> "CrossbarNoiseModel":
        """No impairments."""
        return cls()

    @classmethod
    def typical(cls) -> "CrossbarNoiseModel":
        """A representative impairment set for a calibrated 45 nm array."""
        return cls(
            phase_error_std_rad=0.05,
            relative_amplitude_noise=0.005,
            additive_noise_floor=0.002,
            weight_programming_std=0.004,
        )

    @classmethod
    def pessimistic(cls) -> "CrossbarNoiseModel":
        """A poorly calibrated array, useful for robustness studies."""
        return cls(
            phase_error_std_rad=0.2,
            relative_amplitude_noise=0.02,
            additive_noise_floor=0.01,
            weight_programming_std=0.015,
        )
