"""Functional model of the coherent PCM crossbar (Eq. (1) of the paper).

While :mod:`repro.scalesim` and :mod:`repro.perf` model *how fast and at what
cost* the crossbar runs, this package models *what it computes*: the
E-field-domain multiply-and-accumulate of an N×M array of PCM unit cells,
including

* input/output directional-coupler coefficient design,
* INT6 quantisation of weights (PCM levels) and inputs (ODAC codes),
* coherent detection at the column outputs,
* optional noise and phase-error injection plus thermal-phase-shifter
  calibration,
* a signed-arithmetic wrapper (differential weight/input mapping), and
* a dual-core wrapper that demonstrates programming-latency hiding.

The analytical array model is validated against a device-by-device
composition of couplers, PCM cells and phase shifters in
:class:`~repro.crossbar.unit_cell.UnitCell` (see the unit tests).
"""

from repro.crossbar.array import (
    CrossbarArray,
    design_input_coupling,
    design_output_coupling,
)
from repro.crossbar.calibration import PhaseCalibrator
from repro.crossbar.dual_core import DualCoreCrossbar, ProgrammingJob
from repro.crossbar.noise import CrossbarNoiseModel
from repro.crossbar.signed import SignedCrossbarEngine
from repro.crossbar.unit_cell import UnitCell

__all__ = [
    "CrossbarArray",
    "CrossbarNoiseModel",
    "DualCoreCrossbar",
    "PhaseCalibrator",
    "ProgrammingJob",
    "SignedCrossbarEngine",
    "UnitCell",
    "design_input_coupling",
    "design_output_coupling",
]
