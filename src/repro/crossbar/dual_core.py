"""Dual-core programming-latency hiding (Section IV of the paper).

PCM programming is ~1000× slower than a MAC cycle, so a single-core crossbar
stalls whenever it is reprogrammed.  The paper's dual-core design keeps two
copies of the photonic datapath: while core A computes on the current weight
tile, core B is programmed with the next one, and the roles swap.

:class:`DualCoreCrossbar` is a small event-driven schedule simulator over a
sequence of :class:`ProgrammingJob` items (one per weight tile).  It returns
the timeline for single- and dual-core execution so the latency-hiding effect
can be measured directly and compared with the analytical formula used by
:mod:`repro.scalesim.latency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import SimulationError


@dataclass(frozen=True)
class ProgrammingJob:
    """One weight tile to process: program the array, then stream vectors."""

    name: str
    programming_time_s: float
    compute_time_s: float

    def __post_init__(self) -> None:
        if self.programming_time_s < 0 or self.compute_time_s < 0:
            raise SimulationError("job times must be >= 0")


@dataclass(frozen=True)
class ScheduleEntry:
    """One scheduled phase of a job on a particular core."""

    job_name: str
    core: int
    kind: str  # "program" or "compute"
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Duration of the phase (s)."""
        return self.end_s - self.start_s


class DualCoreCrossbar:
    """Schedules a sequence of tile jobs on one or two crossbar cores."""

    def __init__(self, num_cores: int = 2) -> None:
        if num_cores not in (1, 2):
            raise SimulationError(f"num_cores must be 1 or 2, got {num_cores}")
        self.num_cores = num_cores

    # ------------------------------------------------------------------ schedule
    def schedule(self, jobs: Sequence[ProgrammingJob]) -> List[ScheduleEntry]:
        """Build the execution timeline for ``jobs`` in submission order."""
        if not jobs:
            raise SimulationError("at least one job is required")
        entries: List[ScheduleEntry] = []

        if self.num_cores == 1:
            time = 0.0
            for job in jobs:
                entries.append(
                    ScheduleEntry(job.name, 0, "program", time, time + job.programming_time_s)
                )
                time += job.programming_time_s
                entries.append(
                    ScheduleEntry(job.name, 0, "compute", time, time + job.compute_time_s)
                )
                time += job.compute_time_s
            return entries

        # Dual core: job i computes on core i % 2; programming of job i can
        # start as soon as that core finished computing job i - 2, and compute
        # starts when both the programming is done and the *other* core has
        # finished computing the previous job (outputs are consumed in order).
        core_free_at = [0.0, 0.0]
        previous_compute_end = 0.0
        for index, job in enumerate(jobs):
            core = index % 2
            program_start = core_free_at[core]
            program_end = program_start + job.programming_time_s
            compute_start = max(program_end, previous_compute_end)
            compute_end = compute_start + job.compute_time_s
            entries.append(ScheduleEntry(job.name, core, "program", program_start, program_end))
            entries.append(ScheduleEntry(job.name, core, "compute", compute_start, compute_end))
            core_free_at[core] = compute_end
            previous_compute_end = compute_end
        return entries

    def makespan_s(self, jobs: Sequence[ProgrammingJob]) -> float:
        """Total time to finish all jobs (s)."""
        return max(entry.end_s for entry in self.schedule(jobs))

    # ------------------------------------------------------------------ report
    def utilisation(self, jobs: Sequence[ProgrammingJob]) -> float:
        """Fraction of the makespan during which at least one core computes."""
        entries = self.schedule(jobs)
        makespan = max(entry.end_s for entry in entries)
        compute_time = sum(e.duration_s for e in entries if e.kind == "compute")
        if makespan <= 0:
            return 0.0
        return min(1.0, compute_time / makespan)

    @staticmethod
    def speedup(jobs: Sequence[ProgrammingJob]) -> float:
        """Dual-core speed-up over single-core for the same job sequence."""
        single = DualCoreCrossbar(1).makespan_s(jobs)
        dual = DualCoreCrossbar(2).makespan_s(jobs)
        if dual <= 0:
            raise SimulationError("dual-core makespan must be > 0")
        return single / dual

    @staticmethod
    def summarize(jobs: Sequence[ProgrammingJob]) -> Dict[str, float]:
        """Makespan and utilisation for both core counts plus the speed-up."""
        single = DualCoreCrossbar(1)
        dual = DualCoreCrossbar(2)
        return {
            "single_core_makespan_s": single.makespan_s(jobs),
            "dual_core_makespan_s": dual.makespan_s(jobs),
            "single_core_utilisation": single.utilisation(jobs),
            "dual_core_utilisation": dual.utilisation(jobs),
            "speedup": DualCoreCrossbar.speedup(jobs),
        }
