"""Analytical functional model of the N×M coherent crossbar array.

The array implements Eq. (1) of the paper:

    E_c[j] = (E_laser / (N * sqrt(M))) * sum_i |v_in[i]| * w[i, j]

The input splitter tree delivers ``E_laser / sqrt(N)`` to each row, the
column-dependent input couplers ``k_in[j]`` spread each row's field equally
over the M columns, the PCM cell multiplies by the programmed weight, and the
row-dependent output couplers ``k_out[i]`` combine the column contributions
so that every unit cell's product is represented with equal strength —
costing an additional field factor of ``1/sqrt(N)``, which is the price of
single-wavelength operation.

``CrossbarArray`` works with field *magnitudes* (the calibrated, phase-matched
array); phase errors and their calibration are modelled separately in
:mod:`repro.crossbar.noise` and :mod:`repro.crossbar.calibration`.

Batched execution model
-----------------------
:meth:`CrossbarArray.matmul` is the compute primitive: a whole batch of input
vectors is ODAC-modulated, multiplied against the programmed weight matrix in
a single BLAS GEMM (``modulated @ weights``), and detected/quantised as one
2-D field matrix.  :meth:`matvec` is a thin single-row wrapper around it.

In noiseless (deterministic) operation the batched path is guaranteed to
produce ADC output codes bitwise-identical to streaming the vectors one at a
time: BLAS GEMM and GEMV kernels can disagree in the last ulp, so after the
batched detection any output whose quantiser argument lands within ``1e-6``
LSB of a rounding boundary has its row recomputed with the per-vector GEMV
kernel before the ADC code is emitted (see ``_detect_codes``).  The analog
(``quantize_output=False``) results may still differ from the per-vector path
at the last-ulp level — only the quantised datapath carries the bitwise
guarantee, which is what the functional INT6 network execution uses.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.config.technology import TechnologyConfig
from repro.errors import ProgrammingError, SimulationError
from repro.photonics.pcm import quantize_weight_matrix
from repro.photonics.ring import RingResonatorODAC

#: Half-LSB window (in ADC-code units) around a rounding boundary inside
#: which a batched GEMM result is re-derived with the per-vector GEMV kernel.
#: BLAS GEMM-vs-GEMV discrepancies are ~1e-11 code units, far below this.
_ADC_BOUNDARY_WINDOW = 1e-6


def design_input_coupling(columns: int) -> np.ndarray:
    """Power cross-coupling ratios ``k_in[j]`` for the input (row) couplers.

    Column ``j`` (0-indexed, left to right) must tap off ``1/(M - j)`` of the
    *remaining* row power so that every column receives the same ``1/M`` share
    of the row input:  ``k_in[0] = 1/M``, ..., ``k_in[M-1] = 1``.
    """
    if columns < 1:
        raise SimulationError(f"columns must be >= 1, got {columns}")
    return np.array([1.0 / (columns - j) for j in range(columns)])


def design_output_coupling(rows: int) -> np.ndarray:
    """Power cross-coupling ratios ``k_out[i]`` for the output (column) couplers.

    Row ``i``'s product joins a column waveguide that already carries the
    combined products of rows 0..i-1.  For every row's contribution to reach
    the detector with equal weight ``1/sqrt(N)`` (in field), row ``i`` must
    inject with ``k_out[i] = 1/(i + 1) / (remaining transmission)``; solving
    the recursion gives ``k_out[i] = 1/(i + 1)`` when counted from the top of
    the column.
    """
    if rows < 1:
        raise SimulationError(f"rows must be >= 1, got {rows}")
    return np.array([1.0 / (i + 1) for i in range(rows)])


class CrossbarArray:
    """Functional N×M coherent PCM crossbar core.

    Parameters
    ----------
    rows, columns:
        Array dimensions (N × M).
    technology:
        Supplies the PCM level count, ODAC resolution/OMA and ADC resolution.
    laser_field:
        Magnitude of the laser E-field entering the splitter tree (arbitrary
        units; results are normalised before being returned).
    noise_model:
        Optional :class:`~repro.crossbar.noise.CrossbarNoiseModel` applied to
        the column outputs.
    rng:
        Random generator used by the noise model.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        technology: Optional[TechnologyConfig] = None,
        laser_field: float = 1.0,
        noise_model=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rows < 1 or columns < 1:
            raise SimulationError(f"array dimensions must be >= 1, got {rows}x{columns}")
        if laser_field <= 0:
            raise SimulationError(f"laser_field must be > 0, got {laser_field}")
        self.rows = rows
        self.columns = columns
        self.technology = technology or TechnologyConfig()
        self._laser_field = float(laser_field)
        self._field_scale: Optional[float] = None
        self.noise_model = noise_model
        self.rng = rng if rng is not None else np.random.default_rng(0)

        self.input_coupling = design_input_coupling(columns)
        self.output_coupling = design_output_coupling(rows)
        self.odac = RingResonatorODAC(
            bits=self.technology.activation_bits,
            oma_penalty_db=0.0,  # The OMA penalty is carried by the link budget.
        )

        self._weights = np.zeros((rows, columns))
        self._programmed = False
        self._programming_events = 0
        self._programming_energy_j = 0.0
        self._programming_time_s = 0.0
        self._adc_full_scale = float(rows)

    # ------------------------------------------------------------------ laser
    @property
    def laser_field(self) -> float:
        """Magnitude of the laser E-field entering the splitter tree."""
        return self._laser_field

    @laser_field.setter
    def laser_field(self, value: float) -> None:
        if value <= 0:
            raise SimulationError(f"laser_field must be > 0, got {value}")
        self._laser_field = float(value)
        self._field_scale = None

    @property
    def field_scale(self) -> float:
        """Architectural field scale ``E_laser / (N * sqrt(M))`` of Eq. (1).

        Cached; invalidated when :attr:`laser_field` is reassigned.
        """
        if self._field_scale is None:
            self._field_scale = self._laser_field / (self.rows * math.sqrt(self.columns))
        return self._field_scale

    # ------------------------------------------------------------------ weights
    @property
    def weights(self) -> np.ndarray:
        """The currently programmed (quantised) weight matrix, shape (N, M)."""
        return self._weights.copy()

    @property
    def is_programmed(self) -> bool:
        """True once :meth:`program_weights` has been called."""
        return self._programmed

    @property
    def adc_full_scale(self) -> float:
        """Dot-product value mapped to the ADC's full-scale code."""
        return self._adc_full_scale

    @property
    def programming_events(self) -> int:
        """Number of full-array programming passes performed so far."""
        return self._programming_events

    @property
    def programming_energy_j(self) -> float:
        """Total PCM programming energy spent so far (J)."""
        return self._programming_energy_j

    @property
    def programming_time_s(self) -> float:
        """Total PCM programming time spent so far (s)."""
        return self._programming_time_s

    def program_weights(self, weights: np.ndarray) -> np.ndarray:
        """Quantise ``weights`` to the PCM levels and store them in the array.

        ``weights`` must have shape (rows, columns) with entries in [0, 1]
        (the PCM can only absorb).  Returns the quantised matrix actually
        stored.
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.rows, self.columns):
            raise ProgrammingError(
                f"weight matrix must have shape ({self.rows}, {self.columns}), "
                f"got {weights.shape}"
            )
        quantised = quantize_weight_matrix(
            weights,
            levels=self.technology.pcm_levels,
            min_transmission=self.technology.pcm_min_transmission,
            max_transmission=self.technology.pcm_max_transmission,
        )
        self._weights = quantised
        self._programmed = True
        # The receiver's programmable TIA gain is recalibrated per weight tile
        # so that the ADC full scale matches the largest dot product the tile
        # can produce (all inputs at full scale), instead of the worst-case
        # value N.  This keeps the 6-bit ADC's quantisation step proportional
        # to the tile's actual signal range.
        largest_column_sum = float(np.max(np.sum(quantised, axis=0)))
        self._adc_full_scale = max(largest_column_sum, 1e-9)
        self._programming_events += 1
        cells = self.rows * self.columns
        self._programming_energy_j += cells * self.technology.pcm_programming_energy_j
        self._programming_time_s += self._single_pass_time_s()
        return quantised.copy()

    def _single_pass_time_s(self) -> float:
        """Wall-clock time of one programming pass under the configured parallelism."""
        write = self.technology.pcm_programming_time_s
        parallelism = self.technology.pcm_program_parallelism
        if parallelism == "array":
            return write
        if parallelism == "row":
            return self.rows * write
        return self.rows * self.columns * write

    # ------------------------------------------------------------------ compute
    def _products(self, modulated: np.ndarray) -> np.ndarray:
        """``modulated @ weights`` for a (num_vectors, rows) batch.

        A single-row batch uses the 1-D GEMV kernel so that per-vector results
        are reproduced exactly; larger batches use one GEMM call.
        """
        if modulated.shape[0] == 1:
            return (modulated[0] @ self._weights)[None, :]
        return modulated @ self._weights

    def column_fields(self, inputs: np.ndarray) -> np.ndarray:
        """Column output E-fields for normalised ``inputs`` (Eq. (1)).

        ``inputs`` may be a single vector of length ``rows`` or a batch of
        shape (num_vectors, rows), with entries in [0, 1]; each element is
        quantised by the ODAC before modulation.
        """
        if not self._programmed:
            raise SimulationError("the array must be programmed before computing")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 1:
            if inputs.shape != (self.rows,):
                raise SimulationError(
                    f"input vector must have shape ({self.rows},), got {inputs.shape}"
                )
            modulated = self.odac.modulate(inputs)
            fields = self.field_scale * (modulated @ self._weights)
        elif inputs.ndim == 2 and inputs.shape[1] == self.rows:
            modulated = self.odac.modulate(inputs)
            fields = self.field_scale * self._products(modulated)
        else:
            raise SimulationError(
                f"inputs must have shape ({self.rows},) or (num_vectors, {self.rows}), "
                f"got {inputs.shape}"
            )
        if self.noise_model is not None:
            fields = self.noise_model.apply_to_fields(fields, self.rng)
        return fields

    def detect(self, fields: np.ndarray) -> np.ndarray:
        """Coherent detection of column fields into normalised dot products.

        The balanced photocurrent is proportional to ``|E_laser| * |E_c|``;
        dividing by the known architectural scale factor recovers
        ``sum_i v[i] * w[i, j]`` up to quantisation/noise, and the result is
        then quantised to the ADC resolution (``output_bits``) relative to the
        per-tile full scale established when the weights were programmed.
        ``fields`` may be 1-D (one vector's columns) or a 2-D batch.
        """
        fields = np.asarray(fields, dtype=float)
        raw = fields / self.field_scale
        full_scale = self._adc_full_scale
        levels = (1 << self.technology.output_bits) - 1
        codes = np.clip(np.round(raw / full_scale * levels), 0, levels)
        return codes / levels * full_scale

    def matvec(self, inputs: np.ndarray, quantize_output: bool = True) -> np.ndarray:
        """Compute ``weights.T @ inputs`` optically for one input vector.

        Thin wrapper around :meth:`matmul` with a single-row batch.

        Parameters
        ----------
        inputs:
            Normalised input vector in [0, 1] of length ``rows``.
        quantize_output:
            Apply the ADC quantisation (default).  Disable to inspect the
            analog result.
        """
        inputs = np.asarray(inputs, dtype=float)
        if inputs.shape != (self.rows,):
            if not self._programmed:
                raise SimulationError("the array must be programmed before computing")
            raise SimulationError(
                f"input vector must have shape ({self.rows},), got {inputs.shape}"
            )
        return self.matmul(inputs[None, :], quantize_output=quantize_output)[0]

    def matmul(self, inputs: np.ndarray, quantize_output: bool = True) -> np.ndarray:
        """Stream a batch of input vectors through the array in one GEMM.

        Parameters
        ----------
        inputs:
            Normalised input vectors in [0, 1], shape (num_vectors, rows).
        quantize_output:
            Apply the ADC quantisation (default).  Disable to inspect the
            analog result.

        The whole batch is modulated, multiplied and detected with whole-array
        numpy operations; in noiseless mode the quantised outputs are bitwise
        identical to streaming the vectors one at a time (see module
        docstring).
        """
        if not self._programmed:
            raise SimulationError("the array must be programmed before computing")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.rows:
            raise SimulationError(
                f"inputs must have shape (num_vectors, {self.rows}), got {inputs.shape}"
            )
        modulated = self.odac.modulate(inputs)
        fields = self.field_scale * self._products(modulated)
        if self.noise_model is not None:
            fields = self.noise_model.apply_to_fields(fields, self.rng)
        if not quantize_output:
            return fields / self.field_scale
        return self._detect_codes(fields, modulated)

    def _detect_codes(self, fields: np.ndarray, modulated: np.ndarray) -> np.ndarray:
        """Batched ADC detection with per-vector boundary repair.

        When the field datapath is deterministic (no noise model, or one whose
        field impairments are all zero), any element whose quantiser argument falls within
        ``_ADC_BOUNDARY_WINDOW`` of a rounding boundary has its whole row
        recomputed with the per-vector GEMV kernel, guaranteeing the emitted
        ADC codes match the per-vector path bitwise.
        """
        scale = self.field_scale
        raw = fields / scale
        full_scale = self._adc_full_scale
        levels = (1 << self.technology.output_bits) - 1
        quantiser_arg = raw / full_scale * levels
        codes = np.clip(np.round(quantiser_arg), 0, levels)
        deterministic = (
            self.noise_model is None or self.noise_model.is_field_deterministic
        )
        if deterministic and fields.shape[0] > 1:
            boundary_distance = np.abs(
                quantiser_arg - np.floor(quantiser_arg) - 0.5
            )
            risky_rows = np.unique(
                np.nonzero(boundary_distance < _ADC_BOUNDARY_WINDOW)[0]
            )
            for i in risky_rows:
                row_fields = scale * (modulated[i] @ self._weights)
                if self.noise_model is not None:
                    row_fields = self.noise_model.apply_to_fields(row_fields, self.rng)
                row_raw = row_fields / scale
                codes[i] = np.clip(np.round(row_raw / full_scale * levels), 0, levels)
        return codes / levels * full_scale

    # ------------------------------------------------------------------ report
    def statistics(self) -> Dict[str, float]:
        """Programming statistics of the array."""
        return {
            "rows": self.rows,
            "columns": self.columns,
            "programming_events": self._programming_events,
            "programming_energy_j": self._programming_energy_j,
            "programming_time_s": self._programming_time_s,
        }
