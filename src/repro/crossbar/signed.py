"""Signed matrix-matrix multiplication on the absorption-only crossbar.

PCM cells can only attenuate, so crossbar weights are restricted to [0, 1]
(the paper maps all weights to 64 levels between 0 and 1).  Real CNN layers
have signed weights and, after the first layer, non-negative (ReLU)
activations.  :class:`SignedCrossbarEngine` handles the general signed case
with the standard differential decomposition:

* weights:  ``W = W+ - W-`` with both parts in [0, 1] after scaling;
* inputs:   ``x = x+ - x-`` with both parts in [0, 1] after scaling;

so a signed GEMM becomes at most four non-negative crossbar passes whose
results are combined digitally.  For ReLU networks the input decomposition
collapses to a single differential pass.

Batched execution model
-----------------------
:meth:`SignedCrossbarEngine.matmul` is the primitive: the whole
(num_vectors, rows) batch is normalised with *per-vector* input scales via
broadcasting and pushed through the underlying
:meth:`~repro.crossbar.array.CrossbarArray.matmul` GEMM passes.  When the
entire batch is non-negative — the common case after ReLU — the two
negative-input passes are skipped outright.  Vectors that do contain negative
entries only add zero-rows for the all-positive vectors in the batch, which
contribute exact zeros, so batched outputs match the per-vector path bitwise
in noiseless mode.  :meth:`matvec` is a thin single-row wrapper.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.config.technology import TechnologyConfig
from repro.crossbar.array import CrossbarArray
from repro.errors import SimulationError
from repro.nn.quant import split_signed_matrix


class SignedCrossbarEngine:
    """Runs signed GEMMs on one or two functional crossbar arrays.

    Parameters
    ----------
    rows, columns:
        Physical array dimensions.
    technology:
        Device constants (precisions, PCM levels).
    noise_model:
        Optional impairment model forwarded to the underlying arrays.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        technology: Optional[TechnologyConfig] = None,
        noise_model=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.rows = rows
        self.columns = columns
        self.technology = technology or TechnologyConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.positive_array = CrossbarArray(
            rows, columns, self.technology, noise_model=noise_model, rng=rng
        )
        self.negative_array = CrossbarArray(
            rows, columns, self.technology, noise_model=noise_model, rng=rng
        )
        self._weight_scale = 1.0
        self._programmed = False

    # ------------------------------------------------------------------ weights
    def program(self, weights: np.ndarray) -> None:
        """Program a signed weight matrix of shape (rows, columns)."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.rows, self.columns):
            raise SimulationError(
                f"weights must have shape ({self.rows}, {self.columns}), got {weights.shape}"
            )
        scale = float(np.max(np.abs(weights)))
        self._weight_scale = scale if scale > 0 else 1.0
        positive, negative = split_signed_matrix(weights / self._weight_scale)
        self.positive_array.program_weights(positive)
        self.negative_array.program_weights(negative)
        self._programmed = True

    @property
    def weight_scale(self) -> float:
        """Scale factor by which the programmed weights were normalised."""
        return self._weight_scale

    @property
    def is_programmed(self) -> bool:
        """True once :meth:`program` has been called."""
        return self._programmed

    # ------------------------------------------------------------------ compute
    def matvec(self, inputs: np.ndarray) -> np.ndarray:
        """Signed ``weights.T @ inputs`` for one vector (wraps :meth:`matmul`)."""
        if not self._programmed:
            raise SimulationError("program() must be called before matvec()")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.shape != (self.rows,):
            raise SimulationError(
                f"inputs must have shape ({self.rows},), got {inputs.shape}"
            )
        return self.matmul(inputs[None, :])[0]

    def matmul(self, inputs: np.ndarray) -> np.ndarray:
        """Signed GEMM for a batch of input vectors, shape (num_vectors, rows).

        Each vector is normalised by its own max-magnitude scale
        (broadcasting), split into non-negative positive/negative parts, and
        the whole batch runs through the differential crossbar passes as
        GEMMs.  The two negative-input passes are skipped when the entire
        batch is non-negative (the common ReLU case).
        """
        if not self._programmed:
            raise SimulationError("program() must be called before matmul()")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[1] != self.rows:
            raise SimulationError(
                f"inputs must have shape (num_vectors, {self.rows}), got {inputs.shape}"
            )

        input_scales = np.max(np.abs(inputs), axis=1)
        if not np.any(input_scales > 0.0):
            return np.zeros((inputs.shape[0], self.columns))
        # Zero vectors keep a unit scale so the division is well-defined; their
        # normalised rows are all-zero and produce exact zero outputs.
        safe_scales = np.where(input_scales > 0.0, input_scales, 1.0)
        normalised = inputs / safe_scales[:, None]
        positive_in = np.clip(normalised, 0.0, None)
        negative_in = np.clip(-normalised, 0.0, None)

        result = self.positive_array.matmul(positive_in) - self.negative_array.matmul(
            positive_in
        )
        if np.any(negative_in > 0):
            result -= self.positive_array.matmul(negative_in) - self.negative_array.matmul(
                negative_in
            )
        return result * self._weight_scale * input_scales[:, None]

    # ------------------------------------------------------------------ report
    def statistics(self) -> Dict[str, float]:
        """Programming statistics of both underlying arrays."""
        positive = self.positive_array.statistics()
        negative = self.negative_array.statistics()
        return {
            "programming_events": positive["programming_events"]
            + negative["programming_events"],
            "programming_energy_j": positive["programming_energy_j"]
            + negative["programming_energy_j"],
            "programming_time_s": max(
                positive["programming_time_s"], negative["programming_time_s"]
            ),
        }
