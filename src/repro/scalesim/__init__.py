"""Cycle-accurate dataflow simulator for the crossbar accelerator.

This package is the from-scratch equivalent of the modified SCALE-Sim the
paper uses for step (1) of its framework (Fig. 5): given a CNN workload and a
chip configuration it produces the *runtime specification* —

* MAC compute cycles,
* PCM programming passes and cycles,
* SRAM traffic (input / filter / output / accumulator blocks),
* DRAM traffic as a function of the SRAM capacities and batch size,
* per-layer and per-network latency for the single- and dual-core schemes.

The weight-stationary crossbar dataflow is modelled analytically per tile,
which yields exactly the same cycle/traffic counts a per-cycle simulation of
this dataflow would produce, at a fraction of the runtime.
"""

from repro.scalesim.latency import LayerLatency, compute_layer_latency
from repro.scalesim.runtime import LayerRuntime, NetworkRuntime
from repro.scalesim.schedule import (
    network_tile_jobs,
    schedule_summary,
    scheduled_batch_latency_s,
)
from repro.scalesim.simulator import CrossbarDataflowSimulator
from repro.scalesim.tiling import GemmTiling
from repro.scalesim.traffic import LayerTraffic, compute_layer_traffic

__all__ = [
    "CrossbarDataflowSimulator",
    "GemmTiling",
    "LayerLatency",
    "LayerRuntime",
    "LayerTraffic",
    "NetworkRuntime",
    "compute_layer_latency",
    "compute_layer_traffic",
    "network_tile_jobs",
    "schedule_summary",
    "scheduled_batch_latency_s",
]
