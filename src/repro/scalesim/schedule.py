"""Per-tile programming/compute job extraction from a runtime specification.

The analytical latency model (:mod:`repro.scalesim.latency`) uses closed
forms; for visualisation, validation and what-if scheduling studies it is
useful to have the explicit list of (programming, compute) jobs — one per
weight tile of every layer — that the chip executes for one batch.  The
resulting jobs plug directly into the event-driven
:class:`~repro.crossbar.dual_core.DualCoreCrossbar` scheduler.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.chip import ChipConfig
from repro.crossbar.dual_core import DualCoreCrossbar, ProgrammingJob
from repro.errors import SimulationError
from repro.scalesim.runtime import NetworkRuntime


def network_tile_jobs(runtime: NetworkRuntime, config: ChipConfig | None = None) -> List[ProgrammingJob]:
    """One :class:`ProgrammingJob` per (layer, weight tile) of a batch.

    Parameters
    ----------
    runtime:
        Output of the dataflow simulator.
    config:
        Defaults to the runtime's configuration.
    """
    config = config or runtime.config
    jobs: List[ProgrammingJob] = []
    programming_time = config.programming_time_per_array_s
    cycle_time = config.mac_cycle_time_s
    for layer in runtime.layers:
        compute_time = layer.tiling.compute_cycles_per_tile(config.batch_size) * cycle_time
        for tile_index in range(layer.tiling.num_tiles):
            jobs.append(
                ProgrammingJob(
                    name=f"{layer.layer_name}/tile{tile_index}",
                    programming_time_s=programming_time,
                    compute_time_s=compute_time,
                )
            )
    if not jobs:
        raise SimulationError("the runtime contains no tiles to schedule")
    return jobs


def scheduled_batch_latency_s(runtime: NetworkRuntime, num_cores: int | None = None) -> float:
    """Batch latency obtained by event-driven scheduling of every tile.

    This is the cross-check for the closed-form per-layer latency used by the
    simulator: for identical tiles within a layer the two agree exactly; the
    event-driven number can only be lower when consecutive layers' programming
    overlaps across the layer boundary (an optimisation the analytical model
    conservatively ignores).
    """
    config = runtime.config
    cores = num_cores if num_cores is not None else config.num_cores
    scheduler = DualCoreCrossbar(cores)
    return scheduler.makespan_s(network_tile_jobs(runtime, config))


def schedule_summary(runtime: NetworkRuntime) -> Dict[str, float]:
    """Makespans and speed-up for the runtime's tile sequence."""
    jobs = network_tile_jobs(runtime)
    summary = DualCoreCrossbar.summarize(jobs)
    summary["num_tiles"] = float(len(jobs))
    summary["analytical_batch_latency_s"] = runtime.batch_latency_s
    return summary
