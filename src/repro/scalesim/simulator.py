"""Top-level dataflow simulator (step 1 of the paper's framework, Fig. 5).

:class:`CrossbarDataflowSimulator` walks a network's crossbar layers, lowers
each to its GEMM, maps the GEMM onto the configured array, and produces a
:class:`~repro.scalesim.runtime.NetworkRuntime` containing the compute
cycles, programming passes, SRAM/DRAM traffic and per-layer latencies for
one batch.
"""

from __future__ import annotations

from typing import List

from repro.config.chip import ChipConfig
from repro.errors import SimulationError
from repro.nn.im2col import layer_to_gemms
from repro.nn.network import Network
from repro.scalesim.latency import compute_layer_latency
from repro.scalesim.runtime import LayerRuntime, NetworkRuntime
from repro.scalesim.tiling import GemmTiling
from repro.scalesim.traffic import compute_layer_traffic


class CrossbarDataflowSimulator:
    """Analytical cycle-accurate model of the weight-stationary crossbar dataflow.

    Parameters
    ----------
    config:
        The chip design point to simulate.

    Notes
    -----
    Non-crossbar layers (pooling, batch-norm, activations, residual adds) do
    not occupy the array; their elementwise work is executed by the digital
    activation/accumulator logic while the crossbar proceeds with the next
    layer, so they contribute digital-op energy (captured through the
    activation-op counts of the crossbar layers they follow) but no extra
    latency.  This matches the paper's modelling, which counts only MAC
    compute cycles, programming cycles and memory accesses.
    """

    def __init__(self, config: ChipConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ api
    def simulate(self, network: Network) -> NetworkRuntime:
        """Simulate one batch of ``network`` and return its runtime specs."""
        layer_runtimes: List[LayerRuntime] = []
        first_crossbar_layer = True

        for info in network.shape_infos:
            gemms = layer_to_gemms(info)
            if not gemms:
                continue
            for gemm in gemms:
                runtime = self._simulate_gemm(info, gemm, first_crossbar_layer)
                layer_runtimes.append(runtime)
                first_crossbar_layer = False

        if not layer_runtimes:
            raise SimulationError(
                f"network {network.name!r} contains no crossbar (conv/dense) layers"
            )
        return NetworkRuntime(
            network_name=network.name, config=self.config, layers=layer_runtimes
        )

    def simulate_layer(self, network: Network, layer_name: str) -> LayerRuntime:
        """Simulate a single named layer of ``network`` (for debugging/tests)."""
        info = network.layer_info(layer_name)
        gemms = layer_to_gemms(info)
        if not gemms:
            raise SimulationError(f"layer {layer_name!r} does not run on the crossbar")
        is_first = network.crossbar_layers[0].name == layer_name
        return self._simulate_gemm(info, gemms[0], is_first)

    # ------------------------------------------------------------------ internals
    def _simulate_gemm(self, info, gemm, is_first_crossbar_layer: bool) -> LayerRuntime:
        config = self.config
        tiling = GemmTiling(gemm=gemm, rows=config.rows, columns=config.columns)
        traffic = compute_layer_traffic(
            info=info,
            gemm=gemm,
            tiling=tiling,
            config=config,
            is_first_crossbar_layer=is_first_crossbar_layer,
        )
        latency = compute_layer_latency(
            layer_name=gemm.layer_name,
            tiling=tiling,
            config=config,
            dram_bits=traffic.dram_bits,
        )
        batch = config.batch_size
        activation_ops = float(gemm.output_elements * batch)
        accumulator_ops = float(gemm.output_elements * batch * tiling.k_tiles)
        programmed_cells = float(tiling.programmed_cells)
        return LayerRuntime(
            gemm=gemm,
            tiling=tiling,
            traffic=traffic,
            latency=latency,
            activation_ops=activation_ops,
            accumulator_ops=accumulator_ops,
            programmed_cells=programmed_cells,
        )


def simulate_network(network: Network, config: ChipConfig) -> NetworkRuntime:
    """Convenience wrapper: simulate ``network`` on ``config`` in one call."""
    return CrossbarDataflowSimulator(config).simulate(network)
