"""Tiling of a GEMM onto the N×M crossbar array.

A layer's weight matrix (k × n) rarely fits the physical array (N rows ×
M columns), so it is cut into ceil(k/N) × ceil(n/M) tiles.  Each tile is
programmed into the PCM array once per batch and then all of the layer's
input vectors are streamed through it; partial sums across the k-dimension
tiles are accumulated digitally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.nn.im2col import GemmShape


@dataclass(frozen=True)
class GemmTiling:
    """How one GEMM maps onto the crossbar array.

    Parameters
    ----------
    gemm:
        The layer's GEMM dimensions (m input vectors, k contraction, n outputs).
    rows, columns:
        Physical crossbar dimensions (N × M).
    """

    gemm: GemmShape
    rows: int
    columns: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise SimulationError(
                f"array dimensions must be >= 1, got {self.rows}x{self.columns}"
            )

    # ------------------------------------------------------------------ tiles
    @property
    def k_tiles(self) -> int:
        """Number of tiles along the contraction (row) dimension."""
        return math.ceil(self.gemm.k / self.rows)

    @property
    def n_tiles(self) -> int:
        """Number of tiles along the output (column) dimension."""
        return math.ceil(self.gemm.n / self.columns)

    @property
    def num_tiles(self) -> int:
        """Total number of programming passes needed for the layer."""
        return self.k_tiles * self.n_tiles

    @property
    def last_tile_rows(self) -> int:
        """Rows occupied by the final k-dimension tile."""
        remainder = self.gemm.k % self.rows
        return remainder if remainder else self.rows

    @property
    def last_tile_columns(self) -> int:
        """Columns occupied by the final n-dimension tile."""
        remainder = self.gemm.n % self.columns
        return remainder if remainder else self.columns

    # ------------------------------------------------------------------ cells
    @property
    def programmed_cells(self) -> int:
        """PCM cells that actually hold weights, summed over all tiles (k × n)."""
        return self.gemm.k * self.gemm.n

    @property
    def allocated_cells(self) -> int:
        """PCM cells occupied if every tile is padded to the full array."""
        return self.num_tiles * self.rows * self.columns

    @property
    def cell_utilization(self) -> float:
        """Fraction of allocated cells that hold real weights."""
        return self.programmed_cells / self.allocated_cells

    # ------------------------------------------------------------------ cycles
    def compute_cycles(self, batch_size: int) -> int:
        """MAC cycles to stream the whole batch through every tile.

        Each (k-tile, n-tile) pass consumes one cycle per input vector, and
        there are ``m`` vectors per image.
        """
        if batch_size < 1:
            raise SimulationError(f"batch_size must be >= 1, got {batch_size}")
        return self.num_tiles * self.gemm.m * batch_size

    def compute_cycles_per_tile(self, batch_size: int) -> int:
        """MAC cycles spent on a single tile for the whole batch."""
        if batch_size < 1:
            raise SimulationError(f"batch_size must be >= 1, got {batch_size}")
        return self.gemm.m * batch_size

    @property
    def ideal_cycles_per_image(self) -> float:
        """Lower-bound cycles per image if the array were perfectly utilised."""
        return self.gemm.macs / (self.rows * self.columns)

    def mac_utilization(self, batch_size: int) -> float:
        """Achieved MAC utilisation of the array for this layer."""
        cycles = self.compute_cycles(batch_size)
        peak = cycles * self.rows * self.columns
        return self.gemm.macs * batch_size / peak

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GemmTiling({self.gemm.layer_name!r}, {self.k_tiles}x{self.n_tiles} tiles "
            f"on {self.rows}x{self.columns})"
        )
