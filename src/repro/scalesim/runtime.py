"""Runtime-specification data structures produced by the dataflow simulator.

A :class:`LayerRuntime` bundles one crossbar layer's tiling, traffic and
latency; a :class:`NetworkRuntime` aggregates a whole network and is the
"runtime specs" object that step (2) of the paper's framework (the power /
area / IPS models in :mod:`repro.perf`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config.chip import ChipConfig
from repro.errors import SimulationError
from repro.memory.trace import MemoryTrafficRecord
from repro.nn.im2col import GemmShape
from repro.scalesim.latency import LayerLatency
from repro.scalesim.tiling import GemmTiling
from repro.scalesim.traffic import LayerTraffic


@dataclass(frozen=True)
class LayerRuntime:
    """Complete runtime specification of one crossbar layer for one batch."""

    gemm: GemmShape
    tiling: GemmTiling
    traffic: LayerTraffic
    latency: LayerLatency
    activation_ops: float
    accumulator_ops: float
    programmed_cells: float

    @property
    def layer_name(self) -> str:
        """The layer's name."""
        return self.gemm.layer_name

    @property
    def compute_cycles(self) -> float:
        """MAC cycles spent on this layer for the whole batch."""
        return self.latency.compute_cycles

    @property
    def programming_passes(self) -> int:
        """Array programming passes needed for this layer per batch."""
        return self.latency.programming_passes

    @property
    def macs(self) -> float:
        """Real MACs executed for the whole batch."""
        return float(self.gemm.macs)


@dataclass(frozen=True)
class NetworkRuntime:
    """Aggregated runtime specification of a network for one batch."""

    network_name: str
    config: ChipConfig
    layers: List[LayerRuntime] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.layers:
            raise SimulationError(
                f"network {self.network_name!r} produced no crossbar layers to simulate"
            )

    # ------------------------------------------------------------------ cycles
    @property
    def batch_size(self) -> int:
        """Batch size the runtime was computed for."""
        return self.config.batch_size

    @property
    def total_compute_cycles(self) -> float:
        """MAC cycles for the whole batch across all layers."""
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def total_programming_passes(self) -> int:
        """Array programming passes for the whole batch."""
        return sum(layer.programming_passes for layer in self.layers)

    @property
    def total_programmed_cells(self) -> float:
        """PCM cell writes for the whole batch."""
        return sum(layer.programmed_cells for layer in self.layers)

    @property
    def total_activation_ops(self) -> float:
        """Digital activation operations for the whole batch."""
        return sum(layer.activation_ops for layer in self.layers)

    @property
    def total_accumulator_ops(self) -> float:
        """Digital accumulate operations for the whole batch."""
        return sum(layer.accumulator_ops for layer in self.layers)

    @property
    def total_macs(self) -> float:
        """Real MACs executed for the whole batch."""
        return sum(layer.macs for layer in self.layers) * self.batch_size

    # ------------------------------------------------------------------ latency
    @property
    def batch_latency_s(self) -> float:
        """End-to-end latency of one batch (s)."""
        return sum(layer.latency.latency_s for layer in self.layers)

    @property
    def inference_latency_s(self) -> float:
        """Average latency per inference (s)."""
        return self.batch_latency_s / self.batch_size

    @property
    def inferences_per_second(self) -> float:
        """Throughput in inferences per second (IPS)."""
        if self.batch_latency_s <= 0:
            raise SimulationError("batch latency must be > 0 to compute IPS")
        return self.batch_size / self.batch_latency_s

    @property
    def compute_time_s(self) -> float:
        """Total time the array spends computing per batch (s)."""
        return self.total_compute_cycles * self.config.mac_cycle_time_s

    @property
    def mac_utilization(self) -> float:
        """Achieved fraction of the array's peak MAC throughput during compute."""
        peak = self.total_compute_cycles * self.config.array_size
        if peak <= 0:
            return 0.0
        return self.total_macs / peak

    # ------------------------------------------------------------------ traffic
    @property
    def traffic_record(self) -> MemoryTrafficRecord:
        """Aggregated per-structure traffic for the whole batch."""
        record = MemoryTrafficRecord({})
        for layer in self.layers:
            record = record.merged(layer.traffic.to_record())
        return record

    @property
    def total_dram_bits(self) -> float:
        """Total DRAM bits moved per batch."""
        return sum(layer.traffic.dram_bits for layer in self.layers)

    @property
    def total_sram_bits(self) -> float:
        """Total SRAM bits moved per batch."""
        return sum(layer.traffic.sram_bits for layer in self.layers)

    @property
    def dram_bits_per_inference(self) -> float:
        """DRAM bits moved per inference."""
        return self.total_dram_bits / self.batch_size

    # ------------------------------------------------------------------ reports
    def layer_summaries(self) -> List[Dict[str, float]]:
        """Per-layer summary rows for reports and debugging."""
        return [
            {
                "layer": layer.layer_name,
                "m": layer.gemm.m,
                "k": layer.gemm.k,
                "n": layer.gemm.n,
                "tiles": layer.tiling.num_tiles,
                "compute_cycles": layer.compute_cycles,
                "programming_passes": layer.programming_passes,
                "dram_bits": layer.traffic.dram_bits,
                "sram_bits": layer.traffic.sram_bits,
                "latency_s": layer.latency.latency_s,
                "dram_bound": layer.latency.dram_bound,
            }
            for layer in self.layers
        ]

    def summary(self) -> Dict[str, float]:
        """Aggregate summary used in reports and tests."""
        return {
            "network": self.network_name,
            "batch_size": self.batch_size,
            "total_compute_cycles": self.total_compute_cycles,
            "total_programming_passes": self.total_programming_passes,
            "batch_latency_s": self.batch_latency_s,
            "inferences_per_second": self.inferences_per_second,
            "mac_utilization": self.mac_utilization,
            "dram_bits_per_inference": self.dram_bits_per_inference,
            "sram_bits_per_inference": self.total_sram_bits / self.batch_size,
        }
