"""Per-layer cycle and latency accounting for single- and dual-core chips.

The crossbar processes a layer tile by tile: program the PCM cells of a tile,
stream the whole batch through it, move to the next tile.

* **Single core** — programming and compute strictly alternate, so the layer
  latency is the sum of every tile's programming time and compute time.
* **Dual core** (the paper's scheme) — while one core computes on tile *t*,
  the other core is programmed with tile *t+1*.  Tiles alternate between the
  two cores, so each core has a full compute-time window *plus* the other
  core's compute window to finish its next programming pass.  When compute
  dominates, only the first programming pass is exposed; when programming
  dominates, the two cores' programming passes overlap and the layer runs at
  roughly half the single-core programming time.  The closed form below is
  exact for identical tiles and matches the event-driven scheduler in
  :class:`repro.crossbar.dual_core.DualCoreCrossbar`.

DRAM transfers are assumed to overlap with compute (double buffering), but a
layer can never run faster than its DRAM traffic allows, so the layer latency
is lower-bounded by the DRAM transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.chip import ChipConfig
from repro.errors import SimulationError
from repro.scalesim.tiling import GemmTiling


@dataclass(frozen=True)
class LayerLatency:
    """Cycle/latency summary of one layer for one full batch."""

    layer_name: str
    compute_cycles: float
    programming_passes: int
    programming_time_s: float
    compute_time_s: float
    latency_s: float
    dram_bound: bool

    def __post_init__(self) -> None:
        if self.compute_cycles < 0 or self.programming_passes < 0:
            raise SimulationError("cycle counts must be >= 0")
        if self.latency_s < 0:
            raise SimulationError("latency must be >= 0")


def _dual_core_layer_latency(
    tiles: int, programming_pass_time: float, compute_per_tile_time: float
) -> float:
    """Makespan of ``tiles`` identical (program, compute) jobs on two cores.

    Tiles alternate between the cores; a core may be reprogrammed as soon as
    its previous compute finishes, and computes run one at a time in tile
    order (they share the input-streaming datapath and the accumulator).

    * compute ≥ programming: only the first programming pass is exposed,
      ``P + T·C``;
    * compute < programming: each core's program+compute cycles dominate and
      interleave, ``ceil(T/2)·(P + C)`` plus the final compute when ``T`` is
      even.
    """
    programming = programming_pass_time
    compute = compute_per_tile_time
    if compute >= programming:
        return programming + tiles * compute
    full_core_cycles = (tiles + 1) // 2
    tail_compute = compute if tiles % 2 == 0 else 0.0
    return full_core_cycles * (programming + compute) + tail_compute


def compute_layer_latency(
    layer_name: str,
    tiling: GemmTiling,
    config: ChipConfig,
    dram_bits: float = 0.0,
    dram_bandwidth_bits_per_s: float | None = None,
) -> LayerLatency:
    """Latency of one crossbar layer for a full batch.

    Parameters
    ----------
    layer_name:
        Name used in reports.
    tiling:
        The layer's mapping onto the array.
    config:
        Chip configuration (batch size, clock, core count, PCM timing).
    dram_bits:
        Total DRAM traffic of the layer for the batch; used for the
        bandwidth bound.
    dram_bandwidth_bits_per_s:
        Peak DRAM bandwidth; defaults to the technology's HBM bandwidth.
    """
    if dram_bits < 0:
        raise SimulationError(f"dram_bits must be >= 0, got {dram_bits}")

    batch = config.batch_size
    cycle_time = config.mac_cycle_time_s
    programming_pass_time = config.programming_time_per_array_s

    compute_cycles = float(tiling.compute_cycles(batch))
    compute_time = compute_cycles * cycle_time
    tiles = tiling.num_tiles
    programming_time_total = tiles * programming_pass_time

    compute_per_tile_time = tiling.compute_cycles_per_tile(batch) * cycle_time

    if config.is_dual_core:
        latency = _dual_core_layer_latency(
            tiles, programming_pass_time, compute_per_tile_time
        )
    else:
        latency = programming_time_total + compute_time

    bandwidth = (
        dram_bandwidth_bits_per_s
        if dram_bandwidth_bits_per_s is not None
        else config.technology.dram_bandwidth_bits_per_s
    )
    if bandwidth <= 0:
        raise SimulationError(f"DRAM bandwidth must be > 0, got {bandwidth}")
    dram_time = dram_bits / bandwidth
    dram_bound = dram_time > latency
    latency = max(latency, dram_time)

    return LayerLatency(
        layer_name=layer_name,
        compute_cycles=compute_cycles,
        programming_passes=tiles,
        programming_time_s=programming_time_total,
        compute_time_s=compute_time,
        latency_s=latency,
        dram_bound=dram_bound,
    )
