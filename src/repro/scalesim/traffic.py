"""Per-layer SRAM and DRAM traffic accounting.

The traffic model follows the paper's dataflow description (Section IV):

* weights travel DRAM → filter SRAM → PCM array once per batch;
* a layer's input activations live in the input SRAM; the im2col expansion
  re-reads each element once per output-column tile;
* outputs are staged in the output SRAM and forwarded on-chip to the input
  SRAM for the next layer whenever they fit ("data can be sent directly from
  output SRAM to input SRAM at the end of a full layer computation"); the
  portion that does not fit spills to DRAM and is read back by the next layer;
* if a layer's input working set (whole batch) exceeds the input SRAM, the
  overflow must be re-fetched from DRAM every time the array is reprogrammed
  with a new output-column tile — this is the mechanism behind the steep DRAM
  rise between batch 32 and 64 in Fig. 7a;
* partial sums bounce between the accumulator SRAM and the adder once per
  k-dimension tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.chip import ChipConfig
from repro.errors import SimulationError
from repro.memory.hierarchy import MemorySystem
from repro.memory.trace import MemoryTrafficRecord
from repro.nn.im2col import GemmShape
from repro.nn.network import LayerShapeInfo
from repro.scalesim.tiling import GemmTiling


@dataclass(frozen=True)
class LayerTraffic:
    """Bit-level traffic of one layer for one full batch."""

    layer_name: str
    input_sram_read_bits: float
    input_sram_write_bits: float
    filter_sram_read_bits: float
    filter_sram_write_bits: float
    output_sram_read_bits: float
    output_sram_write_bits: float
    accumulator_sram_read_bits: float
    accumulator_sram_write_bits: float
    dram_read_bits: float
    dram_write_bits: float

    def __post_init__(self) -> None:
        for name in (
            "input_sram_read_bits",
            "input_sram_write_bits",
            "filter_sram_read_bits",
            "filter_sram_write_bits",
            "output_sram_read_bits",
            "output_sram_write_bits",
            "accumulator_sram_read_bits",
            "accumulator_sram_write_bits",
            "dram_read_bits",
            "dram_write_bits",
        ):
            if getattr(self, name) < 0:
                raise SimulationError(f"{name} must be >= 0")

    # ------------------------------------------------------------------ totals
    @property
    def sram_bits(self) -> float:
        """Total SRAM bits moved (all four blocks, reads + writes)."""
        return (
            self.input_sram_read_bits
            + self.input_sram_write_bits
            + self.filter_sram_read_bits
            + self.filter_sram_write_bits
            + self.output_sram_read_bits
            + self.output_sram_write_bits
            + self.accumulator_sram_read_bits
            + self.accumulator_sram_write_bits
        )

    @property
    def dram_bits(self) -> float:
        """Total DRAM bits moved (reads + writes)."""
        return self.dram_read_bits + self.dram_write_bits

    def to_record(self) -> MemoryTrafficRecord:
        """Convert to the generic traffic record consumed by the power model."""
        return MemoryTrafficRecord(
            {
                MemorySystem.INPUT: self.input_sram_read_bits + self.input_sram_write_bits,
                MemorySystem.FILTER: self.filter_sram_read_bits + self.filter_sram_write_bits,
                MemorySystem.OUTPUT: self.output_sram_read_bits + self.output_sram_write_bits,
                MemorySystem.ACCUMULATOR: (
                    self.accumulator_sram_read_bits + self.accumulator_sram_write_bits
                ),
                MemorySystem.DRAM: self.dram_bits,
            }
        )


def compute_layer_traffic(
    info: LayerShapeInfo,
    gemm: GemmShape,
    tiling: GemmTiling,
    config: ChipConfig,
    is_first_crossbar_layer: bool,
) -> LayerTraffic:
    """Traffic of one crossbar layer for a full batch of ``config.batch_size``.

    Parameters
    ----------
    info:
        The layer's resolved shape information (for feature-map sizes).
    gemm, tiling:
        The layer's GEMM lowering and its mapping onto the array.
    config:
        Chip configuration (batch size, SRAM capacities, precisions).
    is_first_crossbar_layer:
        True for the network's first crossbar layer, whose input (the images)
        must always be fetched from DRAM.
    """
    tech = config.technology
    batch = config.batch_size
    activation_bits = tech.activation_bits
    weight_bits = tech.weight_bits
    output_bits = tech.output_bits
    accumulator_bits = tech.accumulator_bits

    # ---------------------------------------------------------------- volumes
    # Working sets for the whole batch, using feature-map (not im2col) sizes.
    input_bits_batch = info.input_shape.num_elements * activation_bits * batch
    output_bits_batch = gemm.output_elements * output_bits * batch
    weight_bits_layer = gemm.weight_elements * weight_bits

    input_sram_bits = config.sram.input_bits
    output_sram_bits = config.sram.output_bits

    # ---------------------------------------------------------------- filter
    # Weights: DRAM -> filter SRAM -> PCM programming DACs, once per batch.
    filter_sram_write_bits = float(weight_bits_layer)
    filter_sram_read_bits = float(weight_bits_layer)
    dram_weight_read_bits = float(weight_bits_layer)

    # ---------------------------------------------------------------- input
    # The im2col expansion re-reads every input element once per column tile.
    input_sram_read_bits = float(gemm.input_elements * activation_bits * batch * tiling.n_tiles)

    # How the input arrives on chip:
    if is_first_crossbar_layer:
        dram_input_once_bits = float(input_bits_batch)
        onchip_forward_bits = 0.0
    else:
        # The previous layer forwarded what fitted in its output SRAM;
        # the remainder was spilled to DRAM and must be read back once.
        onchip_forward_bits = float(min(input_bits_batch, output_sram_bits))
        dram_input_once_bits = float(max(0.0, input_bits_batch - output_sram_bits))

    # Re-fetch penalty: the slice of the input working set that exceeds the
    # input SRAM has to be reloaded from DRAM for every additional column tile.
    input_excess_bits = max(0.0, input_bits_batch - input_sram_bits)
    dram_input_refetch_bits = input_excess_bits * max(0, tiling.n_tiles - 1)

    # Every bit that arrives (once or re-fetched) is written into the input SRAM.
    input_sram_write_bits = float(
        onchip_forward_bits + dram_input_once_bits + dram_input_refetch_bits
    )

    # ---------------------------------------------------------------- output
    # Outputs are staged in the output SRAM (written once, read once when
    # forwarded to the next layer's input SRAM or spilled to DRAM).
    output_sram_write_bits = float(output_bits_batch)
    output_sram_read_bits = float(output_bits_batch)
    dram_output_spill_bits = float(max(0.0, output_bits_batch - output_sram_bits))

    # ---------------------------------------------------------------- psums
    # Partial sums: one write per k-tile pass, one read per pass except the first.
    psum_elements = gemm.output_elements * batch
    accumulator_sram_write_bits = float(psum_elements * tiling.k_tiles * accumulator_bits)
    accumulator_sram_read_bits = float(
        psum_elements * max(0, tiling.k_tiles - 1) * accumulator_bits
    )

    # ---------------------------------------------------------------- DRAM
    dram_read_bits = dram_weight_read_bits + dram_input_once_bits + dram_input_refetch_bits
    dram_write_bits = dram_output_spill_bits

    return LayerTraffic(
        layer_name=info.name,
        input_sram_read_bits=input_sram_read_bits,
        input_sram_write_bits=input_sram_write_bits,
        filter_sram_read_bits=filter_sram_read_bits,
        filter_sram_write_bits=filter_sram_write_bits,
        output_sram_read_bits=output_sram_read_bits,
        output_sram_write_bits=output_sram_write_bits,
        accumulator_sram_read_bits=accumulator_sram_read_bits,
        accumulator_sram_write_bits=accumulator_sram_write_bits,
        dram_read_bits=dram_read_bits,
        dram_write_bits=dram_write_bits,
    )
