"""Concurrency markers and lock construction.

Two small pieces that the rest of the package builds on:

* :func:`thread_shared` — a marker decorator for classes whose instances are
  mutated from more than one thread.  The marker is what the RPR106 lint rule
  keys on (``self._*`` state in a ``@thread_shared`` class must only be
  mutated under the class's lock), and it documents intent to readers.
* :func:`make_lock` / :func:`make_rlock` / :func:`make_condition` — the lock
  factory every shared-state class uses instead of calling ``threading.Lock()``
  directly.  Normally these return the plain stdlib primitive (zero overhead);
  when the runtime concurrency sanitizer is active (``REPRO_SANITIZE=1`` or
  :func:`repro.analysis.sanitizer.enable`), they return instrumented wrappers
  that record per-thread acquisition sequences into a global lock-order graph.

This module is a dependency-free leaf so that ``repro.core`` and
``repro.serve`` can import it without pulling in the analysis package (whose
``__init__`` imports the figure generators, which import ``repro.core`` —
a cycle).  The sanitizer is imported lazily, only when active.
"""

from __future__ import annotations

import os
import threading
from typing import TypeVar

_ClassT = TypeVar("_ClassT", bound=type)

#: Set by :func:`repro.analysis.sanitizer.enable` / ``disable`` so the factory
#: can check for programmatic activation without importing the sanitizer.
_ACTIVE = False


def thread_shared(cls: _ClassT) -> _ClassT:
    """Mark ``cls`` as shared across threads (mutations must hold its lock).

    The decorator is behaviour-free: it sets ``__thread_shared__ = True`` on
    the class and returns it unchanged.  The RPR106 lint rule enforces the
    contract statically; the runtime sanitizer checks the locks dynamically.
    """

    cls.__thread_shared__ = True
    return cls


def is_thread_shared(cls: type) -> bool:
    """True when ``cls`` (or a base) carries the :func:`thread_shared` marker."""

    return bool(getattr(cls, "__thread_shared__", False))


def sanitize_active() -> bool:
    """True when new locks should be created instrumented."""

    if _ACTIVE:
        return True
    return os.environ.get("REPRO_SANITIZE", "").strip() not in ("", "0")


def make_lock(name: str) -> threading.Lock:
    """A mutex named ``name`` (``"ClassName._attr"`` by convention)."""

    if sanitize_active():
        from repro.analysis.sanitizer import SanitizedLock

        return SanitizedLock(name)
    return threading.Lock()


def make_rlock(name: str) -> threading.RLock:
    """A re-entrant mutex named ``name``."""

    if sanitize_active():
        from repro.analysis.sanitizer import SanitizedRLock

        return SanitizedRLock(name)
    return threading.RLock()


def make_condition(name: str) -> threading.Condition:
    """A condition variable (with its own mutex) named ``name``."""

    if sanitize_active():
        from repro.analysis.sanitizer import SanitizedCondition

        return SanitizedCondition(name)
    return threading.Condition()
