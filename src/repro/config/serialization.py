"""(De)serialisation of configuration objects to plain dictionaries and JSON.

Sweep scripts and benchmark harnesses store design points as JSON so that a
run can be reproduced exactly; these helpers round-trip
:class:`~repro.config.chip.ChipConfig` and
:class:`~repro.config.technology.TechnologyConfig` without losing any field.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path
from typing import Any, Dict, Union

from repro.config.chip import ChipConfig, SramConfig
from repro.config.technology import TechnologyConfig
from repro.errors import ConfigurationError


def technology_to_dict(technology: TechnologyConfig) -> Dict[str, Any]:
    """Convert a :class:`TechnologyConfig` to a plain dictionary."""
    return {f.name: getattr(technology, f.name) for f in fields(technology)}


def technology_from_dict(data: Dict[str, Any]) -> TechnologyConfig:
    """Build a :class:`TechnologyConfig` from a dictionary produced by
    :func:`technology_to_dict` (unknown keys are rejected)."""
    valid = {f.name for f in fields(TechnologyConfig)}
    unknown = set(data) - valid
    if unknown:
        raise ConfigurationError(f"unknown TechnologyConfig keys: {sorted(unknown)}")
    return TechnologyConfig(**data)


def chip_config_to_dict(config: ChipConfig) -> Dict[str, Any]:
    """Convert a :class:`ChipConfig` (including nested objects) to a dictionary."""
    return {
        "rows": config.rows,
        "columns": config.columns,
        "num_cores": config.num_cores,
        "batch_size": config.batch_size,
        "mac_clock_hz": config.mac_clock_hz,
        "dram_kind": config.dram_kind,
        "sram": {
            "input_mb": config.sram.input_mb,
            "filter_mb": config.sram.filter_mb,
            "output_mb": config.sram.output_mb,
            "accumulator_mb": config.sram.accumulator_mb,
        },
        "technology": technology_to_dict(config.technology),
    }


def chip_config_from_dict(data: Dict[str, Any]) -> ChipConfig:
    """Build a :class:`ChipConfig` from a dictionary produced by
    :func:`chip_config_to_dict`."""
    known_keys = {
        "rows",
        "columns",
        "num_cores",
        "batch_size",
        "mac_clock_hz",
        "dram_kind",
        "sram",
        "technology",
    }
    unknown = set(data) - known_keys
    if unknown:
        raise ConfigurationError(f"unknown ChipConfig keys: {sorted(unknown)}")

    sram_data = data.get("sram", {})
    technology_data = data.get("technology", {})
    return ChipConfig(
        rows=int(data.get("rows", 32)),
        columns=int(data.get("columns", 32)),
        num_cores=int(data.get("num_cores", 2)),
        batch_size=int(data.get("batch_size", 32)),
        mac_clock_hz=float(data.get("mac_clock_hz", 10e9)),
        dram_kind=data.get("dram_kind", "hbm"),
        sram=SramConfig(**sram_data) if sram_data else SramConfig(),
        technology=(
            technology_from_dict(technology_data)
            if technology_data
            else TechnologyConfig()
        ),
    )


def save_chip_config(config: ChipConfig, path: Union[str, Path]) -> None:
    """Write ``config`` to ``path`` as indented JSON."""
    path = Path(path)
    path.write_text(json.dumps(chip_config_to_dict(config), indent=2, sort_keys=True))


def load_chip_config(path: Union[str, Path]) -> ChipConfig:
    """Read a :class:`ChipConfig` previously written by :func:`save_chip_config`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"could not parse chip config JSON at {path}: {exc}") from exc
    return chip_config_from_dict(data)
