"""Configuration objects for the optical crossbar accelerator model.

Two dataclasses describe a design point:

* :class:`~repro.config.technology.TechnologyConfig` — per-device constants of
  the 45 nm monolithic silicon-photonic platform (losses, energies, areas).
  These are the numbers in Sections III and IV of the paper and rarely change
  between experiments.
* :class:`~repro.config.chip.ChipConfig` — the architectural knobs that the
  paper sweeps: array rows/columns, SRAM block sizes, batch size, number of
  crossbar cores, MAC clock rate and arithmetic precision.

:mod:`repro.config.presets` provides the exact configurations used in the
paper's evaluation (the 32×32 default sweep point and the optimised 128×128
design of Section VII).
"""

from repro.config.chip import ChipConfig, SramConfig
from repro.config.presets import (
    default_sweep_chip,
    optimal_chip,
    paper_technology,
    small_test_chip,
)
from repro.config.serialization import (
    chip_config_from_dict,
    chip_config_to_dict,
    load_chip_config,
    save_chip_config,
    technology_from_dict,
    technology_to_dict,
)
from repro.config.technology import TechnologyConfig

__all__ = [
    "ChipConfig",
    "SramConfig",
    "TechnologyConfig",
    "default_sweep_chip",
    "optimal_chip",
    "paper_technology",
    "small_test_chip",
    "chip_config_from_dict",
    "chip_config_to_dict",
    "technology_from_dict",
    "technology_to_dict",
    "load_chip_config",
    "save_chip_config",
]
