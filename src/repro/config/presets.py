"""Pre-built configurations matching the paper's evaluation.

* :func:`paper_technology` — the 45 nm monolithic silicon-photonics constants.
* :func:`default_sweep_chip` — the "default chip parameters" used for every
  trend study in Section VI-A (32×32 array, dual core, batch 32,
  26.3/0.75/0.75/0.75 MB SRAM).
* :func:`optimal_chip` — the optimised design of Section VII (128×128 array,
  dual core, batch 32, same SRAM sizing).
* :func:`small_test_chip` — a tiny configuration for fast unit tests.
"""

from __future__ import annotations

from repro.config.chip import ChipConfig, SramConfig
from repro.config.technology import TechnologyConfig


def paper_technology(**overrides) -> TechnologyConfig:
    """Return the paper's 45 nm silicon-photonics technology constants.

    Keyword overrides are forwarded to :class:`TechnologyConfig`, e.g.
    ``paper_technology(weight_bits=8)``.
    """
    return TechnologyConfig(**overrides)


def default_sweep_chip(**overrides) -> ChipConfig:
    """The Section VI-A default design point (32×32, dual core, batch 32)."""
    config = ChipConfig(
        rows=32,
        columns=32,
        num_cores=2,
        batch_size=32,
        mac_clock_hz=10e9,
        sram=SramConfig(input_mb=26.3, filter_mb=0.75, output_mb=0.75, accumulator_mb=0.75),
    )
    if overrides:
        config = config.with_updates(**overrides)
    return config


def optimal_chip(**overrides) -> ChipConfig:
    """The Section VII optimised design point (128×128, dual core, batch 32)."""
    config = ChipConfig(
        rows=128,
        columns=128,
        num_cores=2,
        batch_size=32,
        mac_clock_hz=10e9,
        sram=SramConfig(input_mb=26.3, filter_mb=0.75, output_mb=0.75, accumulator_mb=0.75),
    )
    if overrides:
        config = config.with_updates(**overrides)
    return config


def small_test_chip(**overrides) -> ChipConfig:
    """A deliberately tiny design point used by the unit-test suite."""
    config = ChipConfig(
        rows=8,
        columns=8,
        num_cores=1,
        batch_size=2,
        mac_clock_hz=10e9,
        sram=SramConfig(input_mb=0.25, filter_mb=0.125, output_mb=0.125, accumulator_mb=0.125),
    )
    if overrides:
        config = config.with_updates(**overrides)
    return config
