"""Technology constants of the 45 nm monolithic silicon-photonic platform.

Every scalar that the paper quotes for a device (loss, energy per operation,
static power, area, programming time, ...) lives here as a field of
:class:`TechnologyConfig` with the paper's value as the default.  Device and
performance models take a ``TechnologyConfig`` instead of hard-coding numbers,
which is what makes the ablation benchmarks (HBM vs PCIe DRAM, loss budgets,
precision) one-line configuration changes.

Paper sources for the defaults
------------------------------
* grating coupler 2 dB, waveguide 3 dB/cm ........................ Sec. III-A / [10], [12]
* splitter tree 0.8 dB ........................................... [13]
* MMI crossing 1.8 dB/junction (as printed; see note below) ...... [14]
* ODAC OMA penalty 4 dB, ODAC driver 168 fJ @ 10 GS/s,
  ring thermal tuning 0.72 mW ................................... [15]
* laser wall-plug efficiency 15 % ................................ Sec. III-A
* TIA 2.25 mW .................................................... [17]
* ADC 25 mW, 0.0475 mm^2 @ 10 GS/s ............................... [18]
* SerDes 100 fJ/bit, clocking 200 fJ + 0.005 mm^2 per row/column . [15]
* SRAM 50 fJ/bit, 0.45 mm^2/MB ................................... [20]
* HBM DRAM 3.9 pJ/bit, conventional DRAM 15 pJ/bit ............... [21]
* PCM programming ~100 pJ, ~100 ns ............................... [7], [8]

Note on the MMI crossing loss
-----------------------------
The paper prints "1.8 dB/junction" citing [14], but [14] reports an
*ultra-low-loss* crossing (~0.02 dB) and a literal 1.8 dB/junction would add
hundreds of dB of loss to a 128-column row, contradicting the paper's own
optimum at 128–256 rows.  We therefore default the *effective* per-crossing
loss to 0.018 dB (the cited device) while keeping the printed value available
as :data:`MMI_CROSSING_LOSS_DB_AS_PRINTED` for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import ConfigurationError

#: The MMI crossing loss exactly as printed in the paper (dB / junction).
MMI_CROSSING_LOSS_DB_AS_PRINTED = 1.8

#: The per-junction loss of the crossing device cited by the paper ([14]).
MMI_CROSSING_LOSS_DB_CITED_DEVICE = 0.018

#: SRAM area density exactly as printed in the paper ("0.45 mm^2 per 1 MB").
SRAM_AREA_MM2_PER_MB_AS_PRINTED = 0.45

#: SRAM area density that makes the paper's own Section VII numbers
#: self-consistent (121 mm^2 total, "area mainly dominated by the SRAM
#: blocks"): 0.45 mm^2 per *Mb*, i.e. 3.6 mm^2 per MB.  With the printed
#: per-MB figure the 28.55 MB of SRAM would occupy only ~13 mm^2 of a
#: 121 mm^2 chip and could not dominate its area.  We default to the
#: self-consistent value and keep the printed one for sensitivity studies.
SRAM_AREA_MM2_PER_MB_SELF_CONSISTENT = 3.6


@dataclass(frozen=True)
class TechnologyConfig:
    """Device-level constants of the modelled silicon-photonic process.

    All energies are in joules, powers in watts, areas in mm², times in
    seconds, losses in dB, and lengths in metres unless stated otherwise.
    """

    # -- optical losses (dB) -------------------------------------------------
    grating_coupler_loss_db: float = 2.0
    splitter_tree_loss_db: float = 0.8
    mmi_crossing_loss_db: float = MMI_CROSSING_LOSS_DB_CITED_DEVICE
    waveguide_loss_db_per_cm: float = 3.0
    odac_oma_penalty_db: float = 4.0
    directional_coupler_excess_loss_db: float = 0.02
    phase_shifter_insertion_loss_db: float = 0.05
    pcm_insertion_loss_db: float = 0.1

    # -- laser ---------------------------------------------------------------
    laser_wall_plug_efficiency: float = 0.15
    laser_wavelength_m: float = 1.31e-6
    #: Minimum average optical power required at each balanced photodiode to
    #: resolve the target precision at the MAC clock rate (W).  -30 dBm is the
    #: sensitivity class of the 45 nm coherent receiver in [17].
    receiver_sensitivity_w: float = 1e-6
    #: Smallest laser power that can be requested, regardless of array size (W).
    laser_min_output_power_w: float = 1e-3
    #: Largest practical on-package laser output power (W).
    laser_max_output_power_w: float = 10.0

    # -- PCM cell ------------------------------------------------------------
    pcm_programming_energy_j: float = 100e-12
    pcm_programming_time_s: float = 100e-9
    #: How many PCM cells can be (re)programmed concurrently:
    #: "array" — the whole array is rewritten in one ``pcm_programming_time_s``
    #: (the paper's working assumption: a 100 ns programming pass is "1000x
    #: slower than the 10 GHz MAC" and can be hidden by the dual core);
    #: "row" — one row at a time; "cell" — strictly sequential cell writes.
    pcm_program_parallelism: str = "array"
    pcm_levels: int = 64
    pcm_min_transmission: float = 0.0
    pcm_max_transmission: float = 1.0
    pcm_endurance_cycles: float = 1e12

    # -- unit-cell geometry --------------------------------------------------
    #: Pitch of one crossbar unit cell (m).  Sets waveguide propagation length
    #: and the photonic footprint of the array.
    unit_cell_pitch_m: float = 30e-6
    #: Average thermal phase-shifter trimming power per unit cell (W).  The
    #: per-cell shifters only trim small fabrication-induced phase errors, so
    #: the average heater power is a small fraction of a full-pi drive.
    phase_shifter_power_w: float = 0.01e-3
    #: Area of one thermal phase shifter (mm^2).
    phase_shifter_area_mm2: float = 0.0001

    # -- transmitter (RAMZI / ODAC) ------------------------------------------
    odac_driver_energy_per_sample_j: float = 168e-15
    odac_driver_area_mm2: float = 0.0012
    ring_thermal_tuning_power_w: float = 0.72e-3
    rings_per_transmitter: int = 2

    # -- receiver -------------------------------------------------------------
    tia_power_w: float = 2.25e-3
    tia_area_mm2: float = 0.0005
    adc_power_w: float = 25e-3
    adc_area_mm2: float = 0.0475
    adc_sample_rate_hz: float = 10e9
    photodiode_responsivity_a_per_w: float = 1.0

    # -- SerDes and clocking --------------------------------------------------
    serdes_energy_per_bit_j: float = 100e-15
    serdes_area_mm2: float = 0.002
    clock_energy_per_cycle_j: float = 200e-15
    clock_area_per_lane_mm2: float = 0.005
    backend_clock_hz: float = 1e9

    # -- digital logic --------------------------------------------------------
    accumulator_energy_per_op_j: float = 50e-15
    accumulator_area_per_lane_mm2: float = 0.001
    activation_energy_per_op_j: float = 30e-15
    activation_area_mm2: float = 0.05
    control_logic_power_w: float = 50e-3
    control_logic_area_mm2: float = 1.0

    # -- memory ---------------------------------------------------------------
    sram_energy_per_bit_j: float = 50e-15
    sram_area_mm2_per_mb: float = SRAM_AREA_MM2_PER_MB_SELF_CONSISTENT
    sram_leakage_w_per_mb: float = 1e-3
    dram_energy_per_bit_j: float = 3.9e-12
    dram_pcie_energy_per_bit_j: float = 15e-12
    # Co-packaged HBM bandwidth (~1 TB/s, i.e. a couple of HBM2E stacks as in
    # contemporary AI accelerators).
    dram_bandwidth_bits_per_s: float = 8.0e12

    # -- precision -------------------------------------------------------------
    weight_bits: int = 6
    activation_bits: int = 6
    output_bits: int = 6
    accumulator_bits: int = 24

    def __post_init__(self) -> None:
        self._validate()

    # -- derived quantities ----------------------------------------------------
    @property
    def weight_levels(self) -> int:
        """Number of distinct programmable weight levels (2**weight_bits)."""
        return 1 << self.weight_bits

    @property
    def unit_cell_area_mm2(self) -> float:
        """Photonic footprint of a single crossbar unit cell (mm²)."""
        pitch_mm = self.unit_cell_pitch_m * 1e3
        return pitch_mm * pitch_mm

    @property
    def odac_driver_power_w_at(self) -> float:
        """ODAC driver dynamic power at the reference 10 GS/s rate (W)."""
        return self.odac_driver_energy_per_sample_j * 10e9

    def with_updates(self, **overrides: float) -> "TechnologyConfig":
        """Return a copy of this configuration with ``overrides`` applied.

        Unknown field names raise :class:`ConfigurationError`.
        """
        valid = {f.name for f in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ConfigurationError(
                f"unknown TechnologyConfig fields: {sorted(unknown)}"
            )
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(overrides)
        return TechnologyConfig(**current)

    # -- validation -------------------------------------------------------------
    def _validate(self) -> None:
        positive_fields = [
            "laser_wall_plug_efficiency",
            "laser_wavelength_m",
            "receiver_sensitivity_w",
            "pcm_programming_energy_j",
            "pcm_programming_time_s",
            "unit_cell_pitch_m",
            "adc_sample_rate_hz",
            "backend_clock_hz",
            "sram_area_mm2_per_mb",
            "dram_bandwidth_bits_per_s",
        ]
        for name in positive_fields:
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be > 0, got {value}")

        non_negative_fields = [
            "grating_coupler_loss_db",
            "splitter_tree_loss_db",
            "mmi_crossing_loss_db",
            "waveguide_loss_db_per_cm",
            "odac_oma_penalty_db",
            "directional_coupler_excess_loss_db",
            "phase_shifter_insertion_loss_db",
            "pcm_insertion_loss_db",
            "odac_driver_energy_per_sample_j",
            "ring_thermal_tuning_power_w",
            "tia_power_w",
            "adc_power_w",
            "serdes_energy_per_bit_j",
            "clock_energy_per_cycle_j",
            "sram_energy_per_bit_j",
            "dram_energy_per_bit_j",
            "dram_pcie_energy_per_bit_j",
        ]
        for name in non_negative_fields:
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")

        if not 0.0 < self.laser_wall_plug_efficiency <= 1.0:
            raise ConfigurationError(
                "laser_wall_plug_efficiency must be in (0, 1], got "
                f"{self.laser_wall_plug_efficiency}"
            )
        if self.pcm_levels < 2:
            raise ConfigurationError(
                f"pcm_levels must be >= 2, got {self.pcm_levels}"
            )
        if not 0.0 <= self.pcm_min_transmission < self.pcm_max_transmission <= 1.0:
            raise ConfigurationError(
                "PCM transmission range must satisfy 0 <= min < max <= 1, got "
                f"[{self.pcm_min_transmission}, {self.pcm_max_transmission}]"
            )
        for name in ("weight_bits", "activation_bits", "output_bits", "accumulator_bits"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(f"{name} must be a positive integer, got {value}")
        if self.accumulator_bits < self.output_bits:
            raise ConfigurationError(
                "accumulator_bits must be at least output_bits "
                f"({self.accumulator_bits} < {self.output_bits})"
            )
        if self.laser_min_output_power_w > self.laser_max_output_power_w:
            raise ConfigurationError(
                "laser_min_output_power_w must not exceed laser_max_output_power_w"
            )
        if self.rings_per_transmitter < 1:
            raise ConfigurationError(
                f"rings_per_transmitter must be >= 1, got {self.rings_per_transmitter}"
            )
        if self.pcm_program_parallelism not in ("array", "row", "cell"):
            raise ConfigurationError(
                "pcm_program_parallelism must be 'array', 'row' or 'cell', got "
                f"{self.pcm_program_parallelism!r}"
            )


# A module-level default instance used when callers do not care about
# customising the technology.  TechnologyConfig is frozen, so sharing is safe.
DEFAULT_TECHNOLOGY = TechnologyConfig()
