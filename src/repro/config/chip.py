"""Architectural configuration of an optical crossbar accelerator chip.

:class:`ChipConfig` captures exactly the knobs that the paper's design-space
exploration sweeps (Section VI): crossbar array dimensions, SRAM block sizes,
batch size, number of crossbar cores (single vs. dual), and the MAC clock
rate.  A :class:`ChipConfig` together with a
:class:`~repro.config.technology.TechnologyConfig` fully defines a design
point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.constants import mb_to_bits
from repro.errors import ConfigurationError
from repro.config.technology import DEFAULT_TECHNOLOGY, TechnologyConfig


@dataclass(frozen=True)
class SramConfig:
    """Capacities of the four on-chip SRAM blocks, in mebibytes.

    The paper's default sizing is 26.3 MB for the input buffer and 0.75 MB
    for each of the filter, output and accumulator buffers.
    """

    input_mb: float = 26.3
    filter_mb: float = 0.75
    output_mb: float = 0.75
    accumulator_mb: float = 0.75

    def __post_init__(self) -> None:
        for name in ("input_mb", "filter_mb", "output_mb", "accumulator_mb"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"SRAM size {name} must be > 0 MB, got {value}")

    @property
    def total_mb(self) -> float:
        """Total on-chip SRAM capacity (MB)."""
        return self.input_mb + self.filter_mb + self.output_mb + self.accumulator_mb

    @property
    def input_bits(self) -> float:
        """Input SRAM capacity in bits."""
        return mb_to_bits(self.input_mb)

    @property
    def filter_bits(self) -> float:
        """Filter SRAM capacity in bits."""
        return mb_to_bits(self.filter_mb)

    @property
    def output_bits(self) -> float:
        """Output SRAM capacity in bits."""
        return mb_to_bits(self.output_mb)

    @property
    def accumulator_bits(self) -> float:
        """Accumulator SRAM capacity in bits."""
        return mb_to_bits(self.accumulator_mb)

    def scaled_input(self, input_mb: float) -> "SramConfig":
        """Return a copy with a different input-SRAM capacity."""
        return replace(self, input_mb=input_mb)


@dataclass(frozen=True)
class ChipConfig:
    """A single point in the accelerator design space.

    Parameters
    ----------
    rows, columns:
        Crossbar array dimensions N × M.  Rows receive input-vector elements,
        columns produce dot-product outputs.
    num_cores:
        Number of photonic crossbar cores.  ``2`` enables the paper's
        dual-core scheme in which one core computes while the other is being
        programmed.
    batch_size:
        Inference batch size processed per programming pass.
    mac_clock_hz:
        Optical MAC rate; the paper holds this at 10 GHz.
    sram:
        On-chip SRAM block sizes.
    technology:
        Device-level constants of the platform.
    dram_kind:
        ``"hbm"`` for co-packaged HBM (3.9 pJ/bit) or ``"pcie"`` for DRAM
        reached through a PCIe switch (15 pJ/bit), the alternative the paper
        argues against.
    """

    rows: int = 32
    columns: int = 32
    num_cores: int = 2
    batch_size: int = 32
    mac_clock_hz: float = 10e9
    sram: SramConfig = field(default_factory=SramConfig)
    technology: TechnologyConfig = field(default_factory=lambda: DEFAULT_TECHNOLOGY)
    dram_kind: str = "hbm"

    VALID_DRAM_KINDS = ("hbm", "pcie")

    def __post_init__(self) -> None:
        if self.rows < 1 or self.columns < 1:
            raise ConfigurationError(
                f"array dimensions must be >= 1, got {self.rows}x{self.columns}"
            )
        if self.num_cores not in (1, 2):
            raise ConfigurationError(
                f"num_cores must be 1 (single-core) or 2 (dual-core), got {self.num_cores}"
            )
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.mac_clock_hz <= 0:
            raise ConfigurationError(f"mac_clock_hz must be > 0, got {self.mac_clock_hz}")
        if self.dram_kind not in self.VALID_DRAM_KINDS:
            raise ConfigurationError(
                f"dram_kind must be one of {self.VALID_DRAM_KINDS}, got {self.dram_kind!r}"
            )
        if not isinstance(self.rows, int) or not isinstance(self.columns, int):
            raise ConfigurationError("rows and columns must be integers")

    # ------------------------------------------------------------------ derived
    @property
    def array_size(self) -> int:
        """Number of unit cells per core (rows × columns)."""
        return self.rows * self.columns

    @property
    def macs_per_cycle(self) -> int:
        """MAC operations completed by one core in one MAC clock cycle."""
        return self.array_size

    @property
    def is_dual_core(self) -> bool:
        """True when the dual-core programming-hiding scheme is enabled."""
        return self.num_cores == 2

    @property
    def mac_cycle_time_s(self) -> float:
        """Duration of one MAC clock cycle (s)."""
        return 1.0 / self.mac_clock_hz

    @property
    def serialization_ratio(self) -> int:
        """SerDes serialization ratio between the MAC clock and the backend clock."""
        ratio = self.mac_clock_hz / self.technology.backend_clock_hz
        return max(1, int(round(ratio)))

    @property
    def dram_energy_per_bit_j(self) -> float:
        """DRAM access energy implied by :attr:`dram_kind` (J/bit)."""
        if self.dram_kind == "hbm":
            return self.technology.dram_energy_per_bit_j
        return self.technology.dram_pcie_energy_per_bit_j

    @property
    def programming_time_per_array_s(self) -> float:
        """Time to reprogram every PCM cell of one core (s).

        The paper treats one reprogramming pass as a ~100 ns event ("1000×
        slower than the 10 GHz MAC"), i.e. all cells are written concurrently
        by per-cell drivers; this is the default ("array" parallelism).  The
        "row" and "cell" settings model driver-sharing schemes where writes
        are serialised row-by-row or cell-by-cell.
        """
        write_time = self.technology.pcm_programming_time_s
        parallelism = self.technology.pcm_program_parallelism
        if parallelism == "array":
            return write_time
        if parallelism == "row":
            return self.rows * write_time
        return self.rows * self.columns * write_time

    @property
    def programming_cycles_per_array(self) -> float:
        """Array reprogramming time expressed in MAC clock cycles."""
        return self.programming_time_per_array_s * self.mac_clock_hz

    @property
    def peak_macs_per_second(self) -> float:
        """Peak MAC throughput of the chip (only compute cores count)."""
        return self.array_size * self.mac_clock_hz

    @property
    def peak_tops(self) -> float:
        """Peak throughput in tera-operations per second (2 ops per MAC)."""
        return 2.0 * self.peak_macs_per_second / 1e12

    # ------------------------------------------------------------------ utils
    def with_updates(self, **overrides) -> "ChipConfig":
        """Return a copy of this configuration with ``overrides`` applied."""
        valid = {f.name for f in fields(self)}
        unknown = set(overrides) - valid
        if unknown:
            raise ConfigurationError(f"unknown ChipConfig fields: {sorted(unknown)}")
        return replace(self, **overrides)

    def describe(self) -> str:
        """One-line human-readable summary of the design point."""
        cores = "dual-core" if self.is_dual_core else "single-core"
        return (
            f"{self.rows}x{self.columns} {cores} crossbar @ "
            f"{self.mac_clock_hz / 1e9:.0f} GHz, batch {self.batch_size}, "
            f"SRAM {self.sram.total_mb:.2f} MB ({self.dram_kind.upper()} DRAM)"
        )
