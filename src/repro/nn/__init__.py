"""Neural-network workload substrate.

The performance model needs a shape-level description of the CNN being run:
layer types, tensor dimensions, filter sizes, strides — but not trained
weights.  This package provides

* layer descriptors and a network container (:mod:`repro.nn.layers`,
  :mod:`repro.nn.network`),
* im2col/GEMM lowering of convolutions (:mod:`repro.nn.im2col`), which is how
  a convolution is mapped onto the crossbar,
* INT quantisation helpers used by the functional crossbar examples
  (:mod:`repro.nn.quant`),
* topology builders for the benchmark networks, most importantly ResNet-50
  v1.5 (:mod:`repro.nn.resnet`, :mod:`repro.nn.models`).
"""

from repro.nn.im2col import GemmShape, conv_to_gemm, im2col_matrix, layer_to_gemms
from repro.nn.layers import (
    ActivationLayer,
    AddLayer,
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    Layer,
    PoolLayer,
    TensorShape,
)
from repro.nn.models import (
    build_alexnet,
    build_lenet5,
    build_mlp,
    build_mobilenet_v1,
    build_vgg16,
)
from repro.nn.network import Network
from repro.nn.quant import QuantizationParams, dequantize, quantize_tensor, quantize_to_unit_range
from repro.nn.resnet import build_resnet18, build_resnet34, build_resnet50

__all__ = [
    "ActivationLayer",
    "AddLayer",
    "BatchNormLayer",
    "ConvLayer",
    "DenseLayer",
    "FlattenLayer",
    "GemmShape",
    "Layer",
    "Network",
    "PoolLayer",
    "QuantizationParams",
    "TensorShape",
    "build_alexnet",
    "build_lenet5",
    "build_mlp",
    "build_mobilenet_v1",
    "build_resnet18",
    "build_resnet34",
    "build_resnet50",
    "build_vgg16",
    "conv_to_gemm",
    "dequantize",
    "im2col_matrix",
    "layer_to_gemms",
    "quantize_tensor",
    "quantize_to_unit_range",
]
