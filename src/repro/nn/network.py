"""Network container: an ordered sequence of layer descriptors.

For performance modelling a sequential shape trace is sufficient even for
residual networks: a residual branch's convolutions appear as ordinary layers
and the skip connection appears as an :class:`~repro.nn.layers.AddLayer`
whose input is the main path's output shape.  What matters for the simulator
is each crossbar layer's GEMM dimensions and each tensor's size, both of
which the sequential trace preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.nn.layers import Layer, TensorShape


@dataclass(frozen=True)
class LayerShapeInfo:
    """Resolved shape information for one layer of a network."""

    layer: Layer
    input_shape: TensorShape
    output_shape: TensorShape

    @property
    def name(self) -> str:
        """The layer's name."""
        return self.layer.name

    @property
    def macs(self) -> int:
        """MACs executed by this layer for one inference."""
        return self.layer.macs(self.input_shape)

    @property
    def weight_count(self) -> int:
        """Trainable parameters of this layer."""
        return self.layer.weight_count(self.input_shape)

    @property
    def uses_crossbar(self) -> bool:
        """True when this layer's MACs run on the optical crossbar."""
        return self.layer.uses_crossbar


class Network:
    """An ordered CNN described by layer shapes.

    Parameters
    ----------
    name:
        Network name ("resnet50_v1.5", ...).
    input_shape:
        Shape of one input sample (height, width, channels).
    layers:
        Ordered layer descriptors; names must be unique.
    """

    def __init__(self, name: str, input_shape: TensorShape, layers: Sequence[Layer]) -> None:
        if not name:
            raise WorkloadError("network name must be a non-empty string")
        if not layers:
            raise WorkloadError("a network must contain at least one layer")
        names = [layer.name for layer in layers]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise WorkloadError(f"duplicate layer names in network: {sorted(duplicates)}")
        self.name = name
        self.input_shape = input_shape
        self.layers: List[Layer] = list(layers)
        self._shape_infos = self._resolve_shapes()

    # ------------------------------------------------------------------ shapes
    def _resolve_shapes(self) -> List[LayerShapeInfo]:
        infos: List[LayerShapeInfo] = []
        outputs_by_name: Dict[str, TensorShape] = {}
        current = self.input_shape
        for layer in self.layers:
            input_from = getattr(layer, "input_from", None)
            if input_from is None:
                layer_input = current
            else:
                if input_from not in outputs_by_name:
                    raise WorkloadError(
                        f"network {self.name!r}: layer {layer.name!r} references unknown "
                        f"or later layer {input_from!r} as its input"
                    )
                layer_input = outputs_by_name[input_from]
            try:
                output = layer.output_shape(layer_input)
            except WorkloadError as exc:
                raise WorkloadError(
                    f"network {self.name!r}: shape error at layer {layer.name!r}: {exc}"
                ) from exc
            infos.append(
                LayerShapeInfo(layer=layer, input_shape=layer_input, output_shape=output)
            )
            outputs_by_name[layer.name] = output
            current = output
        return infos

    @property
    def shape_infos(self) -> List[LayerShapeInfo]:
        """Resolved per-layer shape information, in execution order."""
        return list(self._shape_infos)

    @property
    def output_shape(self) -> TensorShape:
        """Shape of the network's final output tensor."""
        return self._shape_infos[-1].output_shape

    def __iter__(self) -> Iterator[LayerShapeInfo]:
        return iter(self._shape_infos)

    def __len__(self) -> int:
        return len(self.layers)

    def layer_info(self, name: str) -> LayerShapeInfo:
        """Shape info of the layer called ``name``."""
        for info in self._shape_infos:
            if info.name == name:
                return info
        raise WorkloadError(f"network {self.name!r} has no layer named {name!r}")

    # ------------------------------------------------------------------ totals
    @property
    def crossbar_layers(self) -> List[LayerShapeInfo]:
        """Layers whose MACs execute on the crossbar (conv + dense)."""
        return [info for info in self._shape_infos if info.uses_crossbar]

    @property
    def total_macs(self) -> int:
        """Total MACs per inference."""
        return sum(info.macs for info in self._shape_infos)

    @property
    def total_weights(self) -> int:
        """Total trainable parameters."""
        return sum(info.weight_count for info in self._shape_infos)

    @property
    def total_digital_ops(self) -> int:
        """Total elementwise digital operations per inference."""
        return sum(info.layer.digital_ops(info.input_shape) for info in self._shape_infos)

    def total_weight_bits(self, bits_per_weight: int) -> int:
        """Total parameter storage at a given precision (bits)."""
        if bits_per_weight < 1:
            raise WorkloadError(f"bits_per_weight must be >= 1, got {bits_per_weight}")
        return self.total_weights * bits_per_weight

    def largest_activation_bits(self, bits_per_element: int, batch_size: int = 1) -> int:
        """Size of the largest inter-layer activation tensor for a batch (bits)."""
        if batch_size < 1:
            raise WorkloadError(f"batch_size must be >= 1, got {batch_size}")
        largest = max(
            max(info.input_shape.num_elements, info.output_shape.num_elements)
            for info in self._shape_infos
        )
        return largest * bits_per_element * batch_size

    # ------------------------------------------------------------------ report
    def summary(self) -> Dict[str, float]:
        """Aggregate statistics used in reports and tests."""
        return {
            "name": self.name,
            "num_layers": len(self.layers),
            "num_crossbar_layers": len(self.crossbar_layers),
            "total_macs": self.total_macs,
            "total_weights": self.total_weights,
            "input_shape": self.input_shape.as_tuple(),
            "output_shape": self.output_shape.as_tuple(),
        }

    def layer_table(self) -> List[Tuple[str, Tuple[int, int, int], Tuple[int, int, int], int, int]]:
        """Per-layer (name, in-shape, out-shape, MACs, weights) rows."""
        return [
            (
                info.name,
                info.input_shape.as_tuple(),
                info.output_shape.as_tuple(),
                info.macs,
                info.weight_count,
            )
            for info in self._shape_infos
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Network({self.name!r}, layers={len(self.layers)}, "
            f"macs={self.total_macs / 1e9:.2f}G, params={self.total_weights / 1e6:.1f}M)"
        )
