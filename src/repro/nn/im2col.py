"""im2col / GEMM lowering of convolutional layers.

Mapping a convolution onto the crossbar follows the paper's description in
Section IV: the weights of a 2-D filter bank are flattened into a matrix of
shape (C_in·k·k) × C_out and embedded into the PCM array, and the input
feature map is unrolled into a stream of (C_in·k·k)-long vectors, one per
output pixel.  :class:`GemmShape` captures the resulting matrix-multiply
dimensions, which the tiling model in :mod:`repro.scalesim` maps onto the
N×M crossbar.

:func:`im2col_matrix` additionally performs the real data transformation for
small tensors so that the functional crossbar examples can run an actual
convolution optically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import WorkloadError
from repro.nn.layers import ConvLayer, DenseLayer, TensorShape
from repro.nn.network import LayerShapeInfo


@dataclass(frozen=True)
class GemmShape:
    """Dimensions of the GEMM a crossbar layer lowers to.

    The crossbar computes ``output = weights.T @ input_vector`` per cycle:

    * ``k`` — contraction (dot-product) length = rows occupied on the array,
    * ``n`` — number of output channels = columns occupied on the array,
    * ``m`` — number of input vectors streamed through per inference
      (output pixels for a convolution, 1 for a dense layer).
    """

    layer_name: str
    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        for name in ("m", "k", "n"):
            value = getattr(self, name)
            if value < 1:
                raise WorkloadError(f"GemmShape.{name} must be >= 1, got {value}")

    @property
    def macs(self) -> int:
        """Total MACs of the GEMM."""
        return self.m * self.k * self.n

    @property
    def weight_elements(self) -> int:
        """Number of weight-matrix elements (k × n)."""
        return self.k * self.n

    @property
    def input_elements(self) -> int:
        """Number of streamed input-vector elements (m × k)."""
        return self.m * self.k

    @property
    def output_elements(self) -> int:
        """Number of produced output elements (m × n)."""
        return self.m * self.n


def conv_to_gemm(layer: ConvLayer, input_shape: TensorShape) -> GemmShape:
    """Lower a convolution layer to its im2col GEMM shape."""
    output_shape = layer.output_shape(input_shape)
    in_channels_per_group = input_shape.channels // layer.groups
    k = in_channels_per_group * layer.kernel_size * layer.kernel_size
    # Grouped convolutions run as `groups` separate GEMMs; for tiling purposes
    # we fold the group count into the number of streamed vectors, which keeps
    # the MAC count exact.
    m = output_shape.height * output_shape.width * layer.groups
    n = layer.out_channels // layer.groups
    return GemmShape(layer_name=layer.name, m=m, k=k, n=n)


def dense_to_gemm(layer: DenseLayer, input_shape: TensorShape) -> GemmShape:
    """Lower a dense layer to its GEMM shape (a single input vector)."""
    return GemmShape(layer_name=layer.name, m=1, k=input_shape.num_elements, n=layer.out_features)


def layer_to_gemms(info: LayerShapeInfo) -> List[GemmShape]:
    """Lower one resolved layer to zero or more GEMMs.

    Layers that do not use the crossbar return an empty list.
    """
    layer = info.layer
    if isinstance(layer, ConvLayer):
        return [conv_to_gemm(layer, info.input_shape)]
    if isinstance(layer, DenseLayer):
        return [dense_to_gemm(layer, info.input_shape)]
    return []


def im2col_matrix(
    feature_map: np.ndarray, kernel_size: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unroll a (H, W, C) feature map into an im2col matrix.

    Returns an array of shape (num_output_pixels, kernel_size² · C) whose rows
    are the flattened receptive fields, ordered row-major over the output
    feature map.  This matches the weight flattening used by
    :func:`conv_weights_matrix`, so ``im2col @ weights`` reproduces the
    convolution.

    A batched input of shape (B, H, W, C) is accepted as well and returns
    (B, num_output_pixels, kernel_size² · C).

    The gather is a zero-copy ``sliding_window_view`` over the (padded)
    feature map; the only copy made is the final reshape into the contiguous
    im2col matrix, so no per-patch Python loop is involved.
    """
    feature_map = np.asarray(feature_map, dtype=float)
    batched = feature_map.ndim == 4
    if feature_map.ndim not in (3, 4):
        raise WorkloadError(
            f"feature_map must have shape (H, W, C) or (B, H, W, C), "
            f"got {feature_map.shape}"
        )
    if kernel_size < 1 or stride < 1 or padding < 0:
        raise WorkloadError("kernel_size and stride must be >= 1 and padding >= 0")

    stacked = feature_map if batched else feature_map[None]
    if padding:
        stacked = np.pad(
            stacked,
            ((0, 0), (padding, padding), (padding, padding), (0, 0)),
            mode="constant",
        )
    num_images, padded_h, padded_w, channels = stacked.shape
    out_h = (padded_h - kernel_size) // stride + 1
    out_w = (padded_w - kernel_size) // stride + 1
    if out_h < 1 or out_w < 1:
        raise WorkloadError("im2col produces an empty output; check kernel/stride/padding")

    # (B, out_h', out_w', C, ky, kx) view; subsample by the stride, then move
    # the window axes in front of the channel axis so each flattened patch is
    # ordered (ky, kx, c), matching conv_weights_matrix.
    windows = sliding_window_view(stacked, (kernel_size, kernel_size), axis=(1, 2))
    windows = windows[:, :: stride, :: stride]
    patches = windows.transpose(0, 1, 2, 4, 5, 3).reshape(
        num_images, out_h * out_w, kernel_size * kernel_size * channels
    )
    return patches if batched else patches[0]


def conv_weights_matrix(weights: np.ndarray) -> np.ndarray:
    """Flatten convolution weights (k, k, C_in, C_out) into a GEMM matrix.

    The result has shape (k²·C_in, C_out) and is compatible with
    :func:`im2col_matrix`.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 4:
        raise WorkloadError(
            f"weights must have shape (k, k, C_in, C_out), got {weights.shape}"
        )
    k1, k2, c_in, c_out = weights.shape
    if k1 != k2:
        raise WorkloadError(f"only square kernels are supported, got {k1}x{k2}")
    return weights.reshape(k1 * k2 * c_in, c_out)


def conv2d_reference(
    feature_map: np.ndarray, weights: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Reference convolution via im2col + matmul, for functional tests.

    Parameters
    ----------
    feature_map:
        Input of shape (H, W, C_in), or a batch of shape (B, H, W, C_in).
    weights:
        Filters of shape (k, k, C_in, C_out).

    Returns
    -------
    numpy.ndarray
        Output of shape (H_out, W_out, C_out), with a leading batch axis when
        the input had one.
    """
    weights = np.asarray(weights, dtype=float)
    feature_map = np.asarray(feature_map, dtype=float)
    kernel_size = weights.shape[0]
    unrolled = im2col_matrix(feature_map, kernel_size, stride, padding)
    flat_weights = conv_weights_matrix(weights)
    batched = feature_map.ndim == 4
    height, width = feature_map.shape[1:3] if batched else feature_map.shape[:2]
    out_h = (height + 2 * padding - kernel_size) // stride + 1
    out_w = (width + 2 * padding - kernel_size) // stride + 1
    product = unrolled @ flat_weights
    if batched:
        return product.reshape(feature_map.shape[0], out_h, out_w, flat_weights.shape[1])
    return product.reshape(out_h, out_w, flat_weights.shape[1])
