"""Layer descriptors for CNN workloads.

These classes describe layer *shapes* and derived operation counts; they do
not hold trained weights.  Each layer knows

* its output tensor shape given an input shape,
* its MAC count per inference,
* its weight (parameter) count,
* whether it runs on the crossbar (convolutions and dense layers) or on the
  digital side (pooling, batch-norm, activations, residual adds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import WorkloadError


@dataclass(frozen=True)
class TensorShape:
    """A feature-map shape: height × width × channels (batch excluded)."""

    height: int
    width: int
    channels: int

    def __post_init__(self) -> None:
        for name in ("height", "width", "channels"):
            value = getattr(self, name)
            if value < 1:
                raise WorkloadError(f"TensorShape.{name} must be >= 1, got {value}")

    @property
    def num_elements(self) -> int:
        """Number of scalar elements in the tensor."""
        return self.height * self.width * self.channels

    def bits(self, bits_per_element: int) -> int:
        """Storage size of the tensor at a given precision (bits)."""
        if bits_per_element < 1:
            raise WorkloadError(f"bits_per_element must be >= 1, got {bits_per_element}")
        return self.num_elements * bits_per_element

    def as_tuple(self) -> Tuple[int, int, int]:
        """(height, width, channels) tuple."""
        return (self.height, self.width, self.channels)


def _conv_output_dim(input_dim: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial dimension of a convolution/pooling window."""
    out = (input_dim + 2 * padding - kernel) // stride + 1
    if out < 1:
        raise WorkloadError(
            f"convolution produces an empty output (input={input_dim}, kernel={kernel}, "
            f"stride={stride}, padding={padding})"
        )
    return out


class Layer:
    """Base class for all layer descriptors.

    Parameters
    ----------
    name:
        Unique layer name within its network.
    """

    #: True for layers whose MACs are executed on the optical crossbar.
    uses_crossbar: bool = False

    def __init__(self, name: str) -> None:
        if not name:
            raise WorkloadError("layer name must be a non-empty string")
        self.name = name
        #: Optional name of an earlier layer whose *output* feeds this layer.
        #: ``None`` (the default) means the immediately preceding layer.  This
        #: is how residual-branch layers (projection shortcuts, skip adds)
        #: receive the correct input shape in an otherwise sequential trace.
        self.input_from: str | None = None

    # Subclasses override the methods below.
    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        """Output tensor shape for a given input shape."""
        raise NotImplementedError

    def macs(self, input_shape: TensorShape) -> int:
        """Multiply-accumulate operations per inference (batch size 1)."""
        return 0

    def weight_count(self, input_shape: TensorShape) -> int:
        """Number of trainable parameters."""
        return 0

    def digital_ops(self, input_shape: TensorShape) -> int:
        """Elementwise digital operations (pooling compares, adds, ...)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({self.name!r})"


class ConvLayer(Layer):
    """A 2-D convolution layer.

    Parameters
    ----------
    out_channels:
        Number of output feature maps (filters).
    kernel_size:
        Square kernel size (e.g. 3 for 3×3).
    stride:
        Spatial stride.
    padding:
        Symmetric zero padding.  ``padding="same"`` computes the padding that
        preserves the spatial size at stride 1 (``(k - 1) // 2``).
    groups:
        Grouped convolution factor; ``groups == in_channels`` with
        ``out_channels == in_channels`` is a depthwise convolution.
    bias:
        Whether the layer has a bias vector (adds ``out_channels`` weights).
    activation:
        Activation fused after the convolution ("relu", "identity", ...); only
        used for bookkeeping of digital ops.
    """

    uses_crossbar = True

    def __init__(
        self,
        name: str,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding="same",
        groups: int = 1,
        bias: bool = True,
        activation: str = "relu",
    ) -> None:
        super().__init__(name)
        if out_channels < 1:
            raise WorkloadError(f"out_channels must be >= 1, got {out_channels}")
        if kernel_size < 1:
            raise WorkloadError(f"kernel_size must be >= 1, got {kernel_size}")
        if stride < 1:
            raise WorkloadError(f"stride must be >= 1, got {stride}")
        if groups < 1:
            raise WorkloadError(f"groups must be >= 1, got {groups}")
        if padding != "same" and (not isinstance(padding, int) or padding < 0):
            raise WorkloadError(f"padding must be 'same' or a non-negative int, got {padding}")
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.bias = bias
        self.activation = activation

    def resolved_padding(self) -> int:
        """Numeric padding implied by the ``padding`` setting."""
        if self.padding == "same":
            return (self.kernel_size - 1) // 2
        return int(self.padding)

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if input_shape.channels % self.groups != 0:
            raise WorkloadError(
                f"layer {self.name!r}: input channels {input_shape.channels} not divisible "
                f"by groups {self.groups}"
            )
        if self.out_channels % self.groups != 0:
            raise WorkloadError(
                f"layer {self.name!r}: out_channels {self.out_channels} not divisible "
                f"by groups {self.groups}"
            )
        padding = self.resolved_padding()
        out_h = _conv_output_dim(input_shape.height, self.kernel_size, self.stride, padding)
        out_w = _conv_output_dim(input_shape.width, self.kernel_size, self.stride, padding)
        return TensorShape(out_h, out_w, self.out_channels)

    def macs(self, input_shape: TensorShape) -> int:
        out = self.output_shape(input_shape)
        in_channels_per_group = input_shape.channels // self.groups
        macs_per_output = in_channels_per_group * self.kernel_size * self.kernel_size
        return out.num_elements * macs_per_output

    def weight_count(self, input_shape: TensorShape) -> int:
        in_channels_per_group = input_shape.channels // self.groups
        weights = self.out_channels * in_channels_per_group * self.kernel_size**2
        if self.bias:
            weights += self.out_channels
        return weights

    def digital_ops(self, input_shape: TensorShape) -> int:
        # The fused activation touches each output element once.
        return self.output_shape(input_shape).num_elements


class DenseLayer(Layer):
    """A fully-connected layer (expects a flattened input)."""

    uses_crossbar = True

    def __init__(self, name: str, out_features: int, bias: bool = True, activation: str = "identity") -> None:
        super().__init__(name)
        if out_features < 1:
            raise WorkloadError(f"out_features must be >= 1, got {out_features}")
        self.out_features = out_features
        self.bias = bias
        self.activation = activation

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return TensorShape(1, 1, self.out_features)

    def macs(self, input_shape: TensorShape) -> int:
        return input_shape.num_elements * self.out_features

    def weight_count(self, input_shape: TensorShape) -> int:
        weights = input_shape.num_elements * self.out_features
        if self.bias:
            weights += self.out_features
        return weights

    def digital_ops(self, input_shape: TensorShape) -> int:
        return self.out_features


class PoolLayer(Layer):
    """Max or average pooling."""

    def __init__(
        self,
        name: str,
        kernel_size: int,
        stride: int | None = None,
        padding: int = 0,
        kind: str = "max",
        global_pool: bool = False,
    ) -> None:
        super().__init__(name)
        if kind not in ("max", "avg"):
            raise WorkloadError(f"pool kind must be 'max' or 'avg', got {kind!r}")
        if kernel_size < 1:
            raise WorkloadError(f"kernel_size must be >= 1, got {kernel_size}")
        if padding < 0:
            raise WorkloadError(f"padding must be >= 0, got {padding}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        if self.stride < 1:
            raise WorkloadError(f"stride must be >= 1, got {self.stride}")
        self.padding = padding
        self.kind = kind
        self.global_pool = global_pool

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        if self.global_pool:
            return TensorShape(1, 1, input_shape.channels)
        out_h = _conv_output_dim(input_shape.height, self.kernel_size, self.stride, self.padding)
        out_w = _conv_output_dim(input_shape.width, self.kernel_size, self.stride, self.padding)
        return TensorShape(out_h, out_w, input_shape.channels)

    def digital_ops(self, input_shape: TensorShape) -> int:
        out = self.output_shape(input_shape)
        if self.global_pool:
            window = input_shape.height * input_shape.width
        else:
            window = self.kernel_size * self.kernel_size
        return out.num_elements * window


class BatchNormLayer(Layer):
    """Batch normalisation (folded into a per-channel scale and shift at inference)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape

    def weight_count(self, input_shape: TensorShape) -> int:
        # Scale and shift per channel.
        return 2 * input_shape.channels

    def digital_ops(self, input_shape: TensorShape) -> int:
        return 2 * input_shape.num_elements


class ActivationLayer(Layer):
    """A standalone activation layer (ReLU etc.)."""

    def __init__(self, name: str, kind: str = "relu") -> None:
        super().__init__(name)
        self.kind = kind

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape

    def digital_ops(self, input_shape: TensorShape) -> int:
        return input_shape.num_elements


class AddLayer(Layer):
    """Elementwise residual addition of two equally-shaped tensors.

    ``input_from`` names the main-path operand (as for any layer);
    ``skip_from`` optionally names the second (identity/shortcut) operand so
    functional executors can reproduce the residual sum exactly.  Shape
    resolution only needs the main path, since both operands are equal-shaped.
    """

    def __init__(self, name: str, skip_from: str | None = None) -> None:
        super().__init__(name)
        self.skip_from = skip_from

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return input_shape

    def digital_ops(self, input_shape: TensorShape) -> int:
        return input_shape.num_elements


class FlattenLayer(Layer):
    """Flatten a feature map into a vector (no arithmetic)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def output_shape(self, input_shape: TensorShape) -> TensorShape:
        return TensorShape(1, 1, input_shape.num_elements)
