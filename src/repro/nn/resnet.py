"""ResNet topology builders (v1.5 bottleneck variant and basic-block variants).

ResNet-50 v1.5 is the paper's benchmark workload.  The "v1.5" detail matters
for the MAC count: in the bottleneck blocks that downsample, the stride-2 is
applied in the 3×3 convolution (v1.5) instead of the first 1×1 convolution
(v1), which raises the network's total MACs from ~3.8 G to ~4.1 G per image.

Only layer shapes are described — no trained weights — which is all the
performance model needs.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import WorkloadError
from repro.nn.layers import (
    AddLayer,
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    Layer,
    PoolLayer,
    TensorShape,
)
from repro.nn.network import Network


def _stem(layers: List[Layer]) -> None:
    """Append the ResNet stem: 7×7/2 conv, BN, 3×3/2 max-pool."""
    layers.append(
        ConvLayer("conv1", out_channels=64, kernel_size=7, stride=2, padding=3, bias=False)
    )
    layers.append(BatchNormLayer("bn1"))
    layers.append(PoolLayer("maxpool", kernel_size=3, stride=2, padding=1, kind="max"))


def _bottleneck_block(
    layers: List[Layer],
    stage: int,
    block: int,
    mid_channels: int,
    stride: int,
    project: bool,
    block_input: str,
) -> str:
    """Append one bottleneck block (1×1 → 3×3 → 1×1 + shortcut).

    Returns the name of the block's output layer (the residual add), which the
    next block uses as its input reference.
    """
    prefix = f"stage{stage}_block{block}"
    out_channels = 4 * mid_channels

    conv_a = ConvLayer(
        f"{prefix}_conv1x1a", out_channels=mid_channels, kernel_size=1, stride=1, bias=False
    )
    conv_a.input_from = block_input
    layers.append(conv_a)
    layers.append(BatchNormLayer(f"{prefix}_bn_a"))

    # v1.5: the stride lives in the 3×3 convolution.
    layers.append(
        ConvLayer(
            f"{prefix}_conv3x3",
            out_channels=mid_channels,
            kernel_size=3,
            stride=stride,
            padding=1,
            bias=False,
        )
    )
    layers.append(BatchNormLayer(f"{prefix}_bn_b"))

    layers.append(
        ConvLayer(
            f"{prefix}_conv1x1b", out_channels=out_channels, kernel_size=1, stride=1, bias=False
        )
    )
    main_bn = BatchNormLayer(f"{prefix}_bn_c")
    layers.append(main_bn)

    if project:
        shortcut = ConvLayer(
            f"{prefix}_shortcut",
            out_channels=out_channels,
            kernel_size=1,
            stride=stride,
            bias=False,
        )
        shortcut.input_from = block_input
        layers.append(shortcut)
        layers.append(BatchNormLayer(f"{prefix}_bn_shortcut"))
        skip_source = f"{prefix}_bn_shortcut"
    else:
        skip_source = block_input

    add = AddLayer(f"{prefix}_add", skip_from=skip_source)
    # The add's shape follows the main path; reference the main path's BN so
    # the shape is correct whether or not a projection shortcut was inserted.
    add.input_from = main_bn.name
    layers.append(add)
    return add.name


def _basic_block(
    layers: List[Layer],
    stage: int,
    block: int,
    channels: int,
    stride: int,
    project: bool,
    block_input: str,
) -> str:
    """Append one basic block (3×3 → 3×3 + shortcut), used by ResNet-18/34."""
    prefix = f"stage{stage}_block{block}"

    conv_a = ConvLayer(
        f"{prefix}_conv3x3a", out_channels=channels, kernel_size=3, stride=stride, padding=1, bias=False
    )
    conv_a.input_from = block_input
    layers.append(conv_a)
    layers.append(BatchNormLayer(f"{prefix}_bn_a"))

    layers.append(
        ConvLayer(
            f"{prefix}_conv3x3b", out_channels=channels, kernel_size=3, stride=1, padding=1, bias=False
        )
    )
    main_bn = BatchNormLayer(f"{prefix}_bn_b")
    layers.append(main_bn)

    if project:
        shortcut = ConvLayer(
            f"{prefix}_shortcut", out_channels=channels, kernel_size=1, stride=stride, bias=False
        )
        shortcut.input_from = block_input
        layers.append(shortcut)
        layers.append(BatchNormLayer(f"{prefix}_bn_shortcut"))
        skip_source = f"{prefix}_bn_shortcut"
    else:
        skip_source = block_input

    add = AddLayer(f"{prefix}_add", skip_from=skip_source)
    add.input_from = main_bn.name
    layers.append(add)
    return add.name


def _build_resnet(
    name: str,
    blocks_per_stage: Sequence[int],
    bottleneck: bool,
    num_classes: int,
    input_size: int,
) -> Network:
    """Common ResNet constructor for both block variants."""
    if len(blocks_per_stage) != 4:
        raise WorkloadError(
            f"ResNet requires 4 stages, got {len(blocks_per_stage)}"
        )
    layers: List[Layer] = []
    _stem(layers)
    block_input = "maxpool"

    stage_channels = (64, 128, 256, 512)
    for stage_index, (num_blocks, channels) in enumerate(
        zip(blocks_per_stage, stage_channels), start=1
    ):
        for block_index in range(num_blocks):
            first = block_index == 0
            stride = 2 if (first and stage_index > 1) else 1
            project = first  # Every stage's first block changes channel count.
            if bottleneck:
                block_input = _bottleneck_block(
                    layers, stage_index, block_index, channels, stride, project, block_input
                )
            else:
                block_input = _basic_block(
                    layers, stage_index, block_index, channels, stride, project, block_input
                )

    layers.append(PoolLayer("global_avgpool", kernel_size=1, kind="avg", global_pool=True))
    layers.append(FlattenLayer("flatten"))
    layers.append(DenseLayer("fc", out_features=num_classes, bias=True))

    return Network(name, TensorShape(input_size, input_size, 3), layers)


def build_resnet50(num_classes: int = 1000, input_size: int = 224) -> Network:
    """ResNet-50 v1.5 (bottleneck blocks, [3, 4, 6, 3]), ~4.1 GMAC per image."""
    return _build_resnet("resnet50_v1.5", (3, 4, 6, 3), True, num_classes, input_size)


def build_resnet34(num_classes: int = 1000, input_size: int = 224) -> Network:
    """ResNet-34 (basic blocks, [3, 4, 6, 3])."""
    return _build_resnet("resnet34", (3, 4, 6, 3), False, num_classes, input_size)


def build_resnet18(num_classes: int = 1000, input_size: int = 224) -> Network:
    """ResNet-18 (basic blocks, [2, 2, 2, 2])."""
    return _build_resnet("resnet18", (2, 2, 2, 2), False, num_classes, input_size)
