"""Quantisation helpers for the INT6 analog datapath.

The paper assumes 6-bit precision for weights, activations and converters.
Because the PCM can only attenuate, crossbar weights live in [0, 1]; signed
weight matrices are handled with the standard non-negative decomposition
``W = W_pos - W_neg`` (two crossbar passes or two column groups), which the
functional model in :mod:`repro.crossbar` uses for its signed matvec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class QuantizationParams:
    """Affine quantisation parameters ``real = scale * (code - zero_point)``."""

    scale: float
    zero_point: float
    bits: int

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise WorkloadError(f"scale must be > 0, got {self.scale}")
        if self.bits < 1:
            raise WorkloadError(f"bits must be >= 1, got {self.bits}")

    @property
    def num_levels(self) -> int:
        """Number of representable codes."""
        return 1 << self.bits

    @property
    def max_code(self) -> int:
        """Largest unsigned code."""
        return self.num_levels - 1


def quantize_tensor(
    tensor: np.ndarray, bits: int = 6, symmetric: bool = False
) -> Tuple[np.ndarray, QuantizationParams]:
    """Quantise a real tensor to unsigned integer codes.

    Parameters
    ----------
    tensor:
        Arbitrary real-valued array.
    bits:
        Code width (paper: 6).
    symmetric:
        When True the range is symmetric around zero (zero maps to the middle
        code), otherwise the full [min, max] range is used.

    Returns
    -------
    (codes, params):
        ``codes`` is an integer array in [0, 2**bits - 1] and ``params`` the
        affine parameters needed to dequantise.
    """
    tensor = np.asarray(tensor, dtype=float)
    if tensor.size == 0:
        raise WorkloadError("cannot quantise an empty tensor")
    if bits < 1:
        raise WorkloadError(f"bits must be >= 1, got {bits}")

    max_code = (1 << bits) - 1
    if symmetric:
        bound = float(np.max(np.abs(tensor)))
        bound = bound if bound > 0 else 1.0
        scale = 2.0 * bound / max_code
        zero_point = max_code / 2.0
    else:
        low = float(tensor.min())
        high = float(tensor.max())
        if high == low:
            high = low + 1.0
        scale = (high - low) / max_code
        # Guard against a range so small (denormal) that the scale underflows
        # to zero; such a tensor is effectively constant.
        if not np.isfinite(scale) or scale <= 0.0:
            scale = 1.0
        zero_point = -low / scale

    codes = np.clip(np.round(tensor / scale + zero_point), 0, max_code).astype(np.int64)
    return codes, QuantizationParams(scale=scale, zero_point=zero_point, bits=bits)


def dequantize(codes: np.ndarray, params: QuantizationParams) -> np.ndarray:
    """Invert :func:`quantize_tensor`."""
    codes = np.asarray(codes, dtype=float)
    return params.scale * (codes - params.zero_point)


def quantize_to_unit_range(tensor: np.ndarray, bits: int = 6) -> Tuple[np.ndarray, float]:
    """Quantise a *non-negative* tensor into [0, 1] codes for the PCM/ODAC.

    Returns the quantised values (still in [0, 1], snapped to the 2**bits - 1
    grid) and the scale by which they were normalised, so that
    ``quantised * scale`` approximates the original tensor.
    """
    tensor = np.asarray(tensor, dtype=float)
    if tensor.size == 0:
        raise WorkloadError("cannot quantise an empty tensor")
    if np.any(tensor < 0):
        raise WorkloadError("quantize_to_unit_range expects a non-negative tensor")
    scale = float(tensor.max())
    if scale == 0.0:
        return np.zeros_like(tensor), 1.0
    max_code = (1 << bits) - 1
    codes = np.round(tensor / scale * max_code)
    return codes / max_code, scale


def split_signed_matrix(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a signed matrix into its non-negative positive and negative parts.

    ``matrix == positive - negative`` with both parts >= 0.  This is the
    decomposition used to run signed weight matrices on the absorption-only
    PCM crossbar.
    """
    matrix = np.asarray(matrix, dtype=float)
    positive = np.clip(matrix, 0.0, None)
    negative = np.clip(-matrix, 0.0, None)
    return positive, negative


def quantization_snr_db(original: np.ndarray, quantised: np.ndarray) -> float:
    """Signal-to-quantisation-noise ratio between two arrays (dB)."""
    original = np.asarray(original, dtype=float)
    quantised = np.asarray(quantised, dtype=float)
    if original.shape != quantised.shape:
        raise WorkloadError(
            f"shape mismatch: {original.shape} vs {quantised.shape}"
        )
    noise_power = float(np.mean((original - quantised) ** 2))
    signal_power = float(np.mean(original**2))
    if noise_power == 0.0:
        return float("inf")
    if signal_power == 0.0:
        return float("-inf")
    return 10.0 * np.log10(signal_power / noise_power)
