"""Additional CNN topology builders.

Beyond ResNet-50 (the paper's benchmark) the library ships several classic
CNNs so that the accelerator model and the optimizer can be exercised on
workloads with very different arithmetic-intensity profiles:

* VGG-16 — large, compute-heavy, enormous fully-connected layers;
* AlexNet — small by modern standards, FC-dominated parameters;
* MobileNet-V1 — depthwise-separable convolutions, low data reuse;
* LeNet-5 — tiny network used by fast unit tests.
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import (
    ConvLayer,
    DenseLayer,
    FlattenLayer,
    Layer,
    PoolLayer,
    TensorShape,
)
from repro.nn.network import Network


def build_vgg16(num_classes: int = 1000, input_size: int = 224) -> Network:
    """VGG-16 (configuration D): 13 convolutions + 3 dense layers."""
    layers: List[Layer] = []
    block_channels = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)]
    for block_index, (num_convs, channels) in enumerate(block_channels, start=1):
        for conv_index in range(1, num_convs + 1):
            layers.append(
                ConvLayer(
                    f"conv{block_index}_{conv_index}",
                    out_channels=channels,
                    kernel_size=3,
                    stride=1,
                    padding=1,
                )
            )
        layers.append(PoolLayer(f"pool{block_index}", kernel_size=2, stride=2, kind="max"))
    layers.append(FlattenLayer("flatten"))
    layers.append(DenseLayer("fc6", out_features=4096, activation="relu"))
    layers.append(DenseLayer("fc7", out_features=4096, activation="relu"))
    layers.append(DenseLayer("fc8", out_features=num_classes))
    return Network("vgg16", TensorShape(input_size, input_size, 3), layers)


def build_alexnet(num_classes: int = 1000, input_size: int = 227) -> Network:
    """AlexNet (single-tower variant)."""
    layers: List[Layer] = [
        ConvLayer("conv1", out_channels=96, kernel_size=11, stride=4, padding=0),
        PoolLayer("pool1", kernel_size=3, stride=2, kind="max"),
        ConvLayer("conv2", out_channels=256, kernel_size=5, stride=1, padding=2),
        PoolLayer("pool2", kernel_size=3, stride=2, kind="max"),
        ConvLayer("conv3", out_channels=384, kernel_size=3, stride=1, padding=1),
        ConvLayer("conv4", out_channels=384, kernel_size=3, stride=1, padding=1),
        ConvLayer("conv5", out_channels=256, kernel_size=3, stride=1, padding=1),
        PoolLayer("pool5", kernel_size=3, stride=2, kind="max"),
        FlattenLayer("flatten"),
        DenseLayer("fc6", out_features=4096, activation="relu"),
        DenseLayer("fc7", out_features=4096, activation="relu"),
        DenseLayer("fc8", out_features=num_classes),
    ]
    return Network("alexnet", TensorShape(input_size, input_size, 3), layers)


def build_mobilenet_v1(num_classes: int = 1000, input_size: int = 224, width_multiplier: float = 1.0) -> Network:
    """MobileNet-V1 built from depthwise-separable convolution pairs."""

    def channels(base: int) -> int:
        return max(8, int(round(base * width_multiplier)))

    layers: List[Layer] = [
        ConvLayer("conv1", out_channels=channels(32), kernel_size=3, stride=2, padding=1, bias=False)
    ]

    # (stride of the depthwise conv, output channels of the pointwise conv)
    separable_plan = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ]
    in_channels = channels(32)
    for index, (stride, out_base) in enumerate(separable_plan, start=1):
        out_channels = channels(out_base)
        layers.append(
            ConvLayer(
                f"dw{index}",
                out_channels=in_channels,
                kernel_size=3,
                stride=stride,
                padding=1,
                groups=in_channels,
                bias=False,
            )
        )
        layers.append(
            ConvLayer(
                f"pw{index}", out_channels=out_channels, kernel_size=1, stride=1, bias=False
            )
        )
        in_channels = out_channels

    layers.append(PoolLayer("global_avgpool", kernel_size=1, kind="avg", global_pool=True))
    layers.append(FlattenLayer("flatten"))
    layers.append(DenseLayer("fc", out_features=num_classes))
    return Network("mobilenet_v1", TensorShape(input_size, input_size, 3), layers)


def build_mlp(
    input_features: int = 784,
    hidden_features: tuple = (4096, 4096, 1024),
    num_classes: int = 1000,
) -> Network:
    """A dense multi-layer perceptron.

    MLPs are the degenerate case of the crossbar mapping — every layer is a
    single GEMM with one input vector per sample, so there is no convolutional
    data reuse and the batch size alone determines how well the PCM
    programming cost is amortised.  Useful for studying recommendation-model
    style (GEMM-dominated, reuse-poor) workloads on the accelerator.
    """
    if input_features < 1 or num_classes < 1:
        raise ValueError("input_features and num_classes must be >= 1")
    layers: List[Layer] = [FlattenLayer("flatten")]
    for index, features in enumerate(hidden_features, start=1):
        layers.append(DenseLayer(f"fc{index}", out_features=int(features), activation="relu"))
    layers.append(DenseLayer("fc_out", out_features=num_classes))
    # Describe the input as a 1x1xC tensor so Dense layers see a flat vector.
    return Network("mlp", TensorShape(1, 1, input_features), layers)


def build_lenet5(num_classes: int = 10, input_size: int = 28) -> Network:
    """LeNet-5-style small CNN used by the fast unit-test suite."""
    layers: List[Layer] = [
        ConvLayer("conv1", out_channels=6, kernel_size=5, stride=1, padding=2),
        PoolLayer("pool1", kernel_size=2, stride=2, kind="avg"),
        ConvLayer("conv2", out_channels=16, kernel_size=5, stride=1, padding=0),
        PoolLayer("pool2", kernel_size=2, stride=2, kind="avg"),
        FlattenLayer("flatten"),
        DenseLayer("fc1", out_features=120, activation="relu"),
        DenseLayer("fc2", out_features=84, activation="relu"),
        DenseLayer("fc3", out_features=num_classes),
    ]
    return Network("lenet5", TensorShape(input_size, input_size, 1), layers)
