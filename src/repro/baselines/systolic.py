"""Electronic systolic-array baseline.

A weight-stationary electronic systolic array (TPU-like) executes the same
tiled GEMM dataflow as the optical crossbar, so the
:mod:`repro.scalesim` cycle/traffic model applies directly; only the
per-MAC energy, clock rate and array cell area differ.  This baseline isolates
the photonic datapath's contribution from the (shared) memory-system costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config.chip import ChipConfig
from repro.config.technology import TechnologyConfig
from repro.errors import SimulationError
from repro.memory.hierarchy import MemorySystem
from repro.nn.network import Network
from repro.scalesim.simulator import CrossbarDataflowSimulator


@dataclass(frozen=True)
class SystolicTechnology:
    """Electronic PE constants for the systolic baseline (45 nm class).

    Parameters
    ----------
    mac_energy_j:
        Energy of one INT8 MAC including local register movement.
    pe_area_mm2:
        Area of one processing element.
    clock_hz:
        Array clock; electronic arrays run at ~1 GHz, an order of magnitude
        below the photonic MAC rate.
    weight_load_energy_j:
        Energy to load one weight into a PE register.
    """

    mac_energy_j: float = 0.25e-12
    pe_area_mm2: float = 0.0006
    clock_hz: float = 1e9
    weight_load_energy_j: float = 0.05e-12

    def __post_init__(self) -> None:
        if self.mac_energy_j <= 0 or self.pe_area_mm2 <= 0 or self.clock_hz <= 0:
            raise SimulationError("systolic technology constants must be > 0")


class SystolicArrayAccelerator:
    """An electronic weight-stationary systolic array baseline.

    Parameters
    ----------
    config:
        Reuses the crossbar ChipConfig for array dimensions, batch and SRAM
        sizing; the MAC clock is overridden by the electronic clock.
    systolic:
        Electronic PE constants.
    """

    def __init__(
        self,
        config: ChipConfig,
        systolic: Optional[SystolicTechnology] = None,
    ) -> None:
        self.systolic = systolic or SystolicTechnology()
        # Electronic arrays have no PCM programming stall: loading weights
        # into PE registers takes one pass of `rows` cycles, which we model by
        # zeroing the programming time and clocking the array electronically.
        technology = config.technology.with_updates(pcm_programming_time_s=1e-12)
        self.config = config.with_updates(
            mac_clock_hz=self.systolic.clock_hz, technology=technology, num_cores=1
        )
        self.memory = MemorySystem(self.config)

    # ------------------------------------------------------------------ evaluate
    def evaluate(self, network: Network) -> Dict[str, float]:
        """IPS, power, IPS/W and area of the systolic baseline on ``network``."""
        runtime = CrossbarDataflowSimulator(self.config).simulate(network)
        technology: TechnologyConfig = self.config.technology

        cycles = runtime.total_compute_cycles
        array_size = self.config.array_size
        mac_energy = cycles * array_size * self.systolic.mac_energy_j
        weight_load_energy = (
            runtime.total_programmed_cells * self.systolic.weight_load_energy_j
        )
        traffic = runtime.traffic_record
        sram_energy = self.memory.sram_energy_for_traffic(traffic)
        dram_energy = self.memory.dram_energy_for_traffic(traffic)
        digital_energy = (
            runtime.total_accumulator_ops * technology.accumulator_energy_per_op_j
            + runtime.total_activation_ops * technology.activation_energy_per_op_j
        )
        static_energy = (
            technology.control_logic_power_w + self.memory.total_sram_leakage_w
        ) * runtime.batch_latency_s

        energy_per_batch = (
            mac_energy
            + weight_load_energy
            + sram_energy
            + dram_energy
            + digital_energy
            + static_energy
        )
        latency = runtime.batch_latency_s
        power = energy_per_batch / latency
        ips = runtime.inferences_per_second

        area = (
            self.memory.total_sram_area_mm2
            + array_size * self.systolic.pe_area_mm2
            + technology.control_logic_area_mm2
            + technology.activation_area_mm2
        )

        return {
            "name": f"systolic_{self.config.rows}x{self.config.columns}",
            "ips": ips,
            "power_w": power,
            "ips_per_watt": ips / power,
            "area_mm2": area,
            "energy_per_inference_j": energy_per_batch / runtime.batch_size,
            "mac_energy_fraction": mac_energy / energy_per_batch,
        }
