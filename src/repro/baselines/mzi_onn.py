"""MZI-mesh coherent ONN baseline (the Section II scalability argument).

Coherent ONNs built from Mach-Zehnder interferometer meshes ([2] in the
paper) implement an N×N unitary with N(N-1)/2 MZIs, each of which is
hundreds of micrometres to millimetres long and needs one or two thermo-optic
phase shifters held at a bias.  This model captures the two consequences the
paper highlights:

* chip area grows quadratically with N and crosses a few cm² around
  N ≈ 100–200, and
* static thermal tuning power grows quadratically with N as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import SimulationError


@dataclass(frozen=True)
class MZIMeshONNModel:
    """Area/power scaling model of an N×N MZI-mesh photonic processor.

    Parameters
    ----------
    mzi_length_m:
        Physical length of one MZI including its phase shifters.
    mzi_width_m:
        Pitch between MZI rows in the mesh.
    heaters_per_mzi:
        Number of biased thermo-optic phase shifters per MZI.
    heater_power_w:
        Average holding power per heater.
    insertion_loss_db_per_mzi:
        Optical loss per MZI stage; light traverses ~N stages.
    """

    mzi_length_m: float = 300e-6
    mzi_width_m: float = 60e-6
    heaters_per_mzi: int = 2
    heater_power_w: float = 10e-3
    insertion_loss_db_per_mzi: float = 0.2

    def __post_init__(self) -> None:
        if self.mzi_length_m <= 0 or self.mzi_width_m <= 0:
            raise SimulationError("MZI dimensions must be > 0")
        if self.heaters_per_mzi < 1:
            raise SimulationError("heaters_per_mzi must be >= 1")

    # ------------------------------------------------------------------ counts
    def num_mzis(self, n: int) -> int:
        """MZIs needed for an N×N unitary (rectangular Clements mesh)."""
        if n < 2:
            raise SimulationError(f"mesh size must be >= 2, got {n}")
        return n * (n - 1) // 2

    # ------------------------------------------------------------------ scaling
    def area_mm2(self, n: int) -> float:
        """Photonic area of one N×N mesh (mm²)."""
        per_mzi_mm2 = (self.mzi_length_m * 1e3) * (self.mzi_width_m * 1e3)
        return self.num_mzis(n) * per_mzi_mm2

    def weight_bank_area_mm2(self, n: int) -> float:
        """Area of the two meshes plus the diagonal line needed for a full N×N matrix.

        A general matrix requires the SVD decomposition U·Σ·V†, i.e. two
        meshes and one attenuator column.
        """
        return 2.0 * self.area_mm2(n) + n * (self.mzi_length_m * 1e3) * (self.mzi_width_m * 1e3)

    def static_power_w(self, n: int) -> float:
        """Thermal tuning power of the two meshes (W)."""
        return 2.0 * self.num_mzis(n) * self.heaters_per_mzi * self.heater_power_w

    def optical_depth_loss_db(self, n: int) -> float:
        """Worst-case insertion loss through the mesh cascade (dB)."""
        return 2.0 * n * self.insertion_loss_db_per_mzi

    def max_size_within_area(self, area_limit_mm2: float) -> int:
        """Largest N whose weight bank still fits ``area_limit_mm2``."""
        if area_limit_mm2 <= 0:
            raise SimulationError("area_limit_mm2 must be > 0")
        n = 2
        while self.weight_bank_area_mm2(n + 1) <= area_limit_mm2:
            n += 1
        return n

    def summary(self, n: int) -> Dict[str, float]:
        """Area/power/loss summary for an N×N mesh processor."""
        return {
            "n": n,
            "num_mzis": self.num_mzis(n),
            "weight_bank_area_mm2": self.weight_bank_area_mm2(n),
            "static_power_w": self.static_power_w(n),
            "optical_depth_loss_db": self.optical_depth_loss_db(n),
        }
