"""Non-coherent WDM PCM crossbar baseline (the Section II wavelength argument).

Non-coherent PCM crossbars ([7] in the paper) encode each input-vector
element on its own wavelength and sum in the photocurrent domain, so an N-row
array needs N distinct wavelengths from a comb source plus per-wavelength
modulators and filters.  The paper argues this is impractical for large N;
this model quantifies the argument (comb line count, per-line power, channel
spacing within the usable band).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import SimulationError


@dataclass(frozen=True)
class IncoherentWDMCrossbarModel:
    """Scaling model of a WDM (one wavelength per row) PCM crossbar.

    Parameters
    ----------
    usable_band_nm:
        Usable optical bandwidth of the comb / amplifier (nm).
    min_channel_spacing_nm:
        Minimum channel spacing resolvable by the ring filters (nm).
    comb_line_power_w:
        Optical power needed per comb line at the chip input (W).
    comb_efficiency:
        Wall-plug efficiency of the comb source.
    per_ring_tuning_power_w:
        Thermal tuning power per wavelength-selective ring.
    """

    usable_band_nm: float = 40.0
    min_channel_spacing_nm: float = 0.4
    comb_line_power_w: float = 1e-3
    comb_efficiency: float = 0.05
    per_ring_tuning_power_w: float = 0.5e-3

    def __post_init__(self) -> None:
        if self.usable_band_nm <= 0 or self.min_channel_spacing_nm <= 0:
            raise SimulationError("band and channel spacing must be > 0")
        if not 0 < self.comb_efficiency <= 1:
            raise SimulationError("comb_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------ scaling
    @property
    def max_rows(self) -> int:
        """Largest row count supported by the usable optical band."""
        return int(self.usable_band_nm / self.min_channel_spacing_nm)

    def wavelengths_needed(self, rows: int) -> int:
        """Distinct wavelengths needed for an array with ``rows`` rows."""
        if rows < 1:
            raise SimulationError(f"rows must be >= 1, got {rows}")
        return rows

    def is_feasible(self, rows: int) -> bool:
        """True when the required wavelengths fit in the usable band."""
        return self.wavelengths_needed(rows) <= self.max_rows

    def comb_power_w(self, rows: int) -> float:
        """Electrical power of the comb source for ``rows`` wavelengths (W)."""
        return self.wavelengths_needed(rows) * self.comb_line_power_w / self.comb_efficiency

    def ring_tuning_power_w(self, rows: int, columns: int) -> float:
        """Thermal tuning power of the wavelength-selective rings (W).

        Each unit cell needs a ring resonant at its row's wavelength.
        """
        if columns < 1:
            raise SimulationError(f"columns must be >= 1, got {columns}")
        return rows * columns * self.per_ring_tuning_power_w

    def summary(self, rows: int, columns: int) -> Dict[str, float]:
        """Feasibility and power summary for a rows × columns WDM crossbar."""
        return {
            "rows": rows,
            "columns": columns,
            "wavelengths_needed": self.wavelengths_needed(rows),
            "max_rows_supported": self.max_rows,
            "feasible": self.is_feasible(rows),
            "comb_power_w": self.comb_power_w(rows),
            "ring_tuning_power_w": self.ring_tuning_power_w(rows, columns),
        }
