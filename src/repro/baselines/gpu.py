"""Published GPU reference points.

Table I of the paper compares the proposed accelerator against the NVIDIA
A100 running ResNet-50 v1.5 inference in INT8 with a batch of 128 (29,733
IPS at 396 W board power and an 826 mm² die).  Additional widely published
datapoints (V100, T4) are included for the Fig. 1 landscape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import SimulationError


@dataclass(frozen=True)
class GPUReference:
    """A published accelerator datapoint for ResNet-50 inference."""

    name: str
    resnet50_ips: float
    power_w: float
    die_area_mm2: float
    peak_tops: float
    precision: str
    batch_size: int

    def __post_init__(self) -> None:
        if self.resnet50_ips <= 0 or self.power_w <= 0 or self.die_area_mm2 <= 0:
            raise SimulationError("GPU reference numbers must be > 0")

    @property
    def ips_per_watt(self) -> float:
        """ResNet-50 inferences per second per watt."""
        return self.resnet50_ips / self.power_w

    @property
    def peak_tops_per_watt(self) -> float:
        """Peak TOPS per watt."""
        return self.peak_tops / self.power_w

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary for reports and figure series."""
        return {
            "name": self.name,
            "resnet50_ips": self.resnet50_ips,
            "power_w": self.power_w,
            "die_area_mm2": self.die_area_mm2,
            "peak_tops": self.peak_tops,
            "ips_per_watt": self.ips_per_watt,
            "peak_tops_per_watt": self.peak_tops_per_watt,
            "precision": self.precision,
            "batch_size": self.batch_size,
        }


#: NVIDIA A100 (SXM, INT8, batch 128) — the Table I comparison point.
NVIDIA_A100 = GPUReference(
    name="NVIDIA A100",
    resnet50_ips=29_733.0,
    power_w=396.0,
    die_area_mm2=826.0,
    peak_tops=624.0,
    precision="INT8",
    batch_size=128,
)

#: NVIDIA V100 (SXM2, mixed precision) — Fig. 1 landscape point.
NVIDIA_V100 = GPUReference(
    name="NVIDIA V100",
    resnet50_ips=7_907.0,
    power_w=300.0,
    die_area_mm2=815.0,
    peak_tops=125.0,
    precision="FP16",
    batch_size=128,
)

#: NVIDIA T4 (inference card, INT8) — Fig. 1 landscape point.
NVIDIA_T4 = GPUReference(
    name="NVIDIA T4",
    resnet50_ips=4_306.0,
    power_w=70.0,
    die_area_mm2=545.0,
    peak_tops=130.0,
    precision="INT8",
    batch_size=128,
)


def known_gpu_references() -> List[GPUReference]:
    """All bundled GPU reference points."""
    return [NVIDIA_A100, NVIDIA_V100, NVIDIA_T4]
