"""Baseline accelerator models used for comparison.

* :mod:`repro.baselines.gpu` — published NVIDIA GPU reference points (A100,
  V100, T4) for ResNet-50 inference, used by Table I and the Fig. 1 landscape.
* :mod:`repro.baselines.systolic` — an electronic weight-stationary systolic
  array (TPU-like) evaluated with the same dataflow model, so optical vs.
  electronic MAC energetics can be compared like for like.
* :mod:`repro.baselines.mzi_onn` — an MZI-mesh coherent ONN area/power model
  (the scalability argument of Section II).
* :mod:`repro.baselines.incoherent_wdm` — a non-coherent WDM PCM crossbar
  model (the wavelength-count argument of Section II).
"""

from repro.baselines.gpu import (
    GPUReference,
    NVIDIA_A100,
    NVIDIA_T4,
    NVIDIA_V100,
    known_gpu_references,
)
from repro.baselines.incoherent_wdm import IncoherentWDMCrossbarModel
from repro.baselines.mzi_onn import MZIMeshONNModel
from repro.baselines.systolic import SystolicArrayAccelerator

__all__ = [
    "GPUReference",
    "IncoherentWDMCrossbarModel",
    "MZIMeshONNModel",
    "NVIDIA_A100",
    "NVIDIA_T4",
    "NVIDIA_V100",
    "SystolicArrayAccelerator",
    "known_gpu_references",
]
