"""repro — Scalable Coherent Optical Crossbar (PCM) AI Accelerator modelling.

A from-scratch Python reproduction of *"Scalable Coherent Optical Crossbar
Architecture using PCM for AI Acceleration"* (Sturm & Moazeni, DATE 2023):
photonic device models, a functional INT6 coherent-crossbar datapath, a
SCALE-Sim-style cycle-accurate CNN dataflow simulator, chip power/area
models, a design-space optimizer, GPU/ONN baselines and per-figure analysis
generators.

Quickstart
----------
>>> from repro import OpticalCrossbarAccelerator, build_resnet50, optimal_chip
>>> accelerator = OpticalCrossbarAccelerator(optimal_chip())
>>> metrics = accelerator.evaluate(build_resnet50())
>>> round(metrics.ips_per_watt) > 500
True
"""

from repro.config import (
    ChipConfig,
    SramConfig,
    TechnologyConfig,
    default_sweep_chip,
    optimal_chip,
    paper_technology,
    small_test_chip,
)
from repro.core import (
    DesignOptimizer,
    OpticalCrossbarAccelerator,
    SimulationFramework,
    compare_to_gpu,
    format_comparison_table,
    format_metrics_report,
)
from repro.crossbar import CrossbarArray, CrossbarNoiseModel, SignedCrossbarEngine
from repro.nn import (
    Network,
    build_alexnet,
    build_lenet5,
    build_mobilenet_v1,
    build_resnet18,
    build_resnet34,
    build_resnet50,
    build_vgg16,
)
from repro.perf import evaluate_runtime
from repro.scalesim import CrossbarDataflowSimulator

__version__ = "1.0.0"

__all__ = [
    "ChipConfig",
    "CrossbarArray",
    "CrossbarDataflowSimulator",
    "CrossbarNoiseModel",
    "DesignOptimizer",
    "Network",
    "OpticalCrossbarAccelerator",
    "SignedCrossbarEngine",
    "SimulationFramework",
    "SramConfig",
    "TechnologyConfig",
    "__version__",
    "build_alexnet",
    "build_lenet5",
    "build_mobilenet_v1",
    "build_resnet18",
    "build_resnet34",
    "build_resnet50",
    "build_vgg16",
    "compare_to_gpu",
    "default_sweep_chip",
    "evaluate_runtime",
    "format_comparison_table",
    "format_metrics_report",
    "optimal_chip",
    "paper_technology",
    "small_test_chip",
]
