"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library errors without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of its valid range."""


class DeviceModelError(ReproError):
    """A photonic or electronic device model received invalid parameters."""


class ProgrammingError(ReproError):
    """Invalid PCM programming request (value out of range, wrong shape, ...)."""


class SimulationError(ReproError):
    """The dataflow / performance simulation could not be completed."""


class WorkloadError(ReproError):
    """A neural-network workload description is malformed."""


class CapacityError(ReproError):
    """A memory structure was asked to hold more data than it can."""


class OptimizationError(ReproError):
    """The design-space optimizer could not find a feasible design point."""


class ConcurrencyError(ReproError):
    """The runtime concurrency sanitizer detected a lock-discipline violation
    (e.g. a lock-order cycle that could deadlock under a different schedule)."""


class ServeError(ReproError):
    """The online inference-serving subsystem failed or was misused."""


class QueueOverflowError(ServeError):
    """A serving request was rejected because the admission queue is full."""


class BadRequestError(ServeError):
    """A serving request payload is malformed (maps to HTTP 400)."""


class UnknownModelError(SimulationError, ServeError):
    """A serving request named a model the server does not host.

    Derives from both :class:`SimulationError` (it is a workload-addressing
    mistake, like an unknown workload name) and :class:`ServeError` (it is
    raised on the serving path and maps to HTTP 404).
    """


class ReplicaCrashError(ServeError):
    """An engine replica died (or was injected to die) while running a batch."""


class ReplicaTimeoutError(ServeError):
    """An engine replica failed to answer within the dispatch timeout."""


class CorruptResultError(ServeError):
    """An engine replica returned outputs that failed validation (NaN/Inf)."""


class ReplicaFailureError(ServeError):
    """A micro-batch failed permanently after exhausting its retry budget.

    ``attempts`` counts the dispatch attempts made; ``last_error`` is the
    terminal per-attempt failure (also chained as ``__cause__``).
    """

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: "Exception | None" = None,
    ) -> None:
        super().__init__(message)
        self.attempts = int(attempts)
        self.last_error = last_error


class CircuitOpenError(ServeError):
    """A request was shed because the model's circuit breaker is open.

    Maps to HTTP 503 with a ``Retry-After`` header of ``retry_after_s``
    (rounded up to whole seconds on the wire).
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 1.0,
        model: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.model = model


class RequestTimeoutError(ServeError):
    """An HTTP client request timed out (connect or read)."""
