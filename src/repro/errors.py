"""Exception hierarchy for the repro package.

All exceptions raised intentionally by this library derive from
:class:`ReproError` so that callers can catch library errors without
accidentally swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of its valid range."""


class DeviceModelError(ReproError):
    """A photonic or electronic device model received invalid parameters."""


class ProgrammingError(ReproError):
    """Invalid PCM programming request (value out of range, wrong shape, ...)."""


class SimulationError(ReproError):
    """The dataflow / performance simulation could not be completed."""


class WorkloadError(ReproError):
    """A neural-network workload description is malformed."""


class CapacityError(ReproError):
    """A memory structure was asked to hold more data than it can."""


class OptimizationError(ReproError):
    """The design-space optimizer could not find a feasible design point."""


class ServeError(ReproError):
    """The online inference-serving subsystem failed or was misused."""


class QueueOverflowError(ServeError):
    """A serving request was rejected because the admission queue is full."""


class BadRequestError(ServeError):
    """A serving request payload is malformed (maps to HTTP 400)."""


class UnknownModelError(SimulationError, ServeError):
    """A serving request named a model the server does not host.

    Derives from both :class:`SimulationError` (it is a workload-addressing
    mistake, like an unknown workload name) and :class:`ServeError` (it is
    raised on the serving path and maps to HTTP 404).
    """
