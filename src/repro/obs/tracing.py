"""Per-request tracing for the serving pipeline.

One :class:`RequestTrace` is born per admitted request and follows it through
the whole pipeline; each pipeline stage records one :class:`Span`.  The span
taxonomy tiles the request's lifetime exactly — every stage's end timestamp
is the next stage's start — so the per-stage durations sum to the end-to-end
latency with no unaccounted gaps::

    admit → queue_wait → batch_assemble → dispatch → replica_execute
                                                        │ (children:
                                                        │  replica_run,
                                                        │  attempt/restart)
                                          reorder ◀─────┘
                                             └─▶ deliver

All timestamps come from a monotonic clock (``time.monotonic`` by default),
shared with the micro-batcher and the dispatch loop, so spans recorded by
different threads are directly comparable.

:class:`Tracer` owns sampling (seeded, deterministic) and a bounded ring of
finished traces; it exports Chrome trace-event JSON loadable in Perfetto or
``chrome://tracing`` (:meth:`Tracer.chrome_trace` / :meth:`Tracer.export_chrome`).

:class:`DispatchTraceRecorder` is the piece that crosses execution
boundaries: the dispatch loop packs one ``(trace_id, parent_span_id)``
context per traced request into it, the worker pool records retry/restart
events into it, and the replica — *including a process replica on the far
side of a pickle boundary* (see :func:`replica_span_records`) — sends back
child span records that splice into each request's trace under its
``replica_execute`` span.  Worker-side records carry times relative to the
worker's own entry, rebased onto the parent's clock at splice time, so
cross-process spans stay on one consistent timeline.
"""

from __future__ import annotations

import json
import random
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.concurrency import make_lock, thread_shared
from repro.errors import SimulationError

__all__ = [
    "DEFAULT_TRACE_CAPACITY",
    "DispatchTraceRecorder",
    "ROOT_SPAN_NAME",
    "RequestTrace",
    "STAGES",
    "Span",
    "Tracer",
    "replica_span_records",
]

#: Pipeline stages, in order.  Stage spans tile the request lifetime exactly;
#: everything else (``replica_run``, ``attempt``, ``restart``) nests *under*
#: ``replica_execute`` and is excluded from the stage breakdown to avoid
#: double counting.
STAGES = (
    "admit",
    "queue_wait",
    "batch_assemble",
    "dispatch",
    "replica_execute",
    "reorder",
    "deliver",
)

#: Name of every trace's root span (the whole request).
ROOT_SPAN_NAME = "request"

#: Finished traces kept in the tracer's ring before the oldest are dropped.
DEFAULT_TRACE_CAPACITY = 1024

#: Span id of every trace's root span.
ROOT_SPAN_ID = "s0"


class Span:
    """One named, closed time interval inside a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_s", "end_s", "meta")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        start_s: float,
        end_s: float,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = float(start_s)
        self.end_s = float(end_s)
        self.meta = dict(meta or {})

    @property
    def duration_s(self) -> float:
        return max(self.end_s - self.start_s, 0.0)

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "meta": dict(self.meta),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, {self.span_id}, parent={self.parent_id}, "
            f"{self.duration_s * 1e3:.3f} ms)"
        )


@thread_shared
class RequestTrace:
    """One request's spans, from admission to delivery.

    Pipeline stages hand the trace object from thread to thread (submit →
    dispatch loop → pool thread → delivery callback) with a happens-before
    edge at every handoff, but span recording still takes the trace's own
    lock so late writers (a worker record splicing in while a reader
    snapshots) stay safe.
    """

    def __init__(
        self,
        trace_id: str,
        name: str = ROOT_SPAN_NAME,
        start_s: float = 0.0,
        tracer: Optional["Tracer"] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> None:
        self.trace_id = str(trace_id)
        self.name = str(name)
        self.start_s = float(start_s)
        self._tracer = tracer
        self._lock = make_lock("RequestTrace._lock")
        self._spans: List[Span] = []
        self._next_span = 1
        self._end_s: Optional[float] = None
        self._meta: Dict[str, object] = dict(meta or {})

    # ------------------------------------------------------------------ recording
    def _reserve_span_id_locked(self) -> str:
        span_id = f"s{self._next_span}"
        self._next_span += 1
        return span_id

    def reserve_span_id(self) -> str:
        """Allocate a span id now, to be recorded (or propagated) later.

        This is how the dispatch loop names each request's ``replica_execute``
        span *before* the batch leaves for the replica, so the worker on the
        far side can parent its own spans onto it.
        """
        with self._lock:
            return self._reserve_span_id_locked()

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent_id: Optional[str] = ROOT_SPAN_ID,
        span_id: Optional[str] = None,
        **meta: object,
    ) -> Span:
        """Record one closed span; returns it.

        ``span_id=None`` allocates the next id; passing a previously
        :meth:`reserve_span_id`-reserved id closes that span.  ``parent_id``
        defaults to the root span.
        """
        with self._lock:
            if span_id is None:
                span_id = self._reserve_span_id_locked()
            span = Span(self.trace_id, span_id, parent_id, name, start_s, end_s, meta)
            self._spans.append(span)
            return span

    def finish(self, end_s: Optional[float] = None, **meta: object) -> None:
        """Close the root span and hand the trace to the tracer's ring.

        Idempotent: a second finish only merges ``meta``.  ``end_s=None``
        stamps the tracer's clock (or the last span's end without a tracer).
        """
        tracer = self._tracer
        with self._lock:
            if meta:
                self._meta.update(meta)
            if self._end_s is not None:
                return
            if end_s is None:
                if tracer is not None:
                    end_s = tracer.now()
                else:
                    end_s = max((s.end_s for s in self._spans), default=self.start_s)
            self._end_s = float(end_s)
        if tracer is not None:
            tracer._store(self)

    # ------------------------------------------------------------------ reading
    @property
    def finished(self) -> bool:
        with self._lock:
            return self._end_s is not None

    @property
    def end_s(self) -> Optional[float]:
        with self._lock:
            return self._end_s

    def spans(self) -> List[Span]:
        """Every recorded span, root first, in recording order."""
        with self._lock:
            end = self._end_s
            if end is None:
                end = max((s.end_s for s in self._spans), default=self.start_s)
            root = Span(
                self.trace_id, ROOT_SPAN_ID, None, self.name, self.start_s, end, self._meta
            )
            return [root] + list(self._spans)

    def stage_durations(self) -> Dict[str, float]:
        """Seconds spent per pipeline stage, plus ``"e2e"`` when finished.

        Only :data:`STAGES` spans count (children like ``replica_run`` nest
        inside ``replica_execute`` and would double-count).
        """
        durations: Dict[str, float] = {}
        with self._lock:
            for span in self._spans:
                if span.name in STAGES:
                    durations[span.name] = durations.get(span.name, 0.0) + span.duration_s
            if self._end_s is not None:
                durations["e2e"] = max(self._end_s - self.start_s, 0.0)
        return durations

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly view (the ``GET /v1/trace/{id}`` body)."""
        spans = self.spans()
        root = spans[0]
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": root.end_s,
            "duration_s": root.duration_s,
            "finished": self.finished,
            "meta": dict(root.meta),
            "stage_durations_s": self.stage_durations(),
            "spans": [span.as_dict() for span in spans],
        }


@thread_shared
class Tracer:
    """Samples, names and retains request traces.

    Parameters
    ----------
    capacity:
        Finished traces kept in the in-memory ring (oldest dropped first).
    sample_rate:
        Fraction of requests traced, in ``[0, 1]``.  ``1.0`` (the default)
        traces everything and never consults the RNG; the sampling decision
        is drawn from a seeded RNG so a given request stream reproduces the
        same sample.
    clock:
        Monotonic timestamp source shared by every span.
    seed:
        Seed for the sampling RNG and the trace-id prefix.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        sample_rate: float = 1.0,
        clock=time.monotonic,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise SimulationError(f"trace capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample_rate <= 1.0:
            raise SimulationError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        self.capacity = int(capacity)
        self.sample_rate = float(sample_rate)
        self._clock = clock
        self._lock = make_lock("Tracer._lock")
        self._rng = random.Random(seed)
        self._prefix = f"{self._rng.getrandbits(32):08x}"
        self._started = 0
        self._sampled_out = 0
        self._dropped = 0
        self._finished: "OrderedDict[str, RequestTrace]" = OrderedDict()

    def now(self) -> float:
        """A timestamp on the tracer's clock (for caller-recorded spans)."""
        return self._clock()

    # ------------------------------------------------------------------ lifecycle
    def start_trace(self, name: str = ROOT_SPAN_NAME, **meta: object) -> Optional[RequestTrace]:
        """Begin one trace, or ``None`` when sampling skips this request."""
        with self._lock:
            self._started += 1
            sequence = self._started
            if self.sample_rate < 1.0:
                if self.sample_rate <= 0.0 or self._rng.random() >= self.sample_rate:
                    self._sampled_out += 1
                    return None
            trace_id = f"{self._prefix}-{sequence:06d}"
        return RequestTrace(
            trace_id, name=name, start_s=self._clock(), tracer=self, meta=meta
        )

    def _store(self, trace: RequestTrace) -> None:
        """Ring insertion, called by :meth:`RequestTrace.finish`."""
        with self._lock:
            self._finished[trace.trace_id] = trace
            while len(self._finished) > self.capacity:
                self._finished.popitem(last=False)
                self._dropped += 1

    # ------------------------------------------------------------------ reading
    def get(self, trace_id: str) -> Optional[Dict[str, object]]:
        """One finished trace as a JSON-friendly dict, or ``None``."""
        with self._lock:
            trace = self._finished.get(trace_id)
        return None if trace is None else trace.as_dict()

    def trace_ids(self) -> List[str]:
        """Ids of retained finished traces, oldest first."""
        with self._lock:
            return list(self._finished)

    def traces(self) -> List[RequestTrace]:
        """Retained finished traces, oldest first."""
        with self._lock:
            return list(self._finished.values())

    def snapshot(self) -> Dict[str, object]:
        """Tracer bookkeeping for the stats endpoint."""
        with self._lock:
            return {
                "started": self._started,
                "sampled_out": self._sampled_out,
                "finished": len(self._finished),
                "dropped": self._dropped,
                "capacity": self.capacity,
                "sample_rate": self.sample_rate,
            }

    # ------------------------------------------------------------------ export
    def chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event JSON (Perfetto / ``chrome://tracing`` loadable).

        Every span becomes one complete ("X") event; each trace gets its own
        ``tid`` row named after the trace id, so Perfetto renders one lane
        per request with the stage spans tiled across it.
        """
        events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro-serve"},
            }
        ]
        for tid, trace in enumerate(self.traces(), start=1):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": trace.trace_id},
                }
            )
            for span in trace.spans():
                events.append(
                    {
                        "name": span.name,
                        "cat": "serve",
                        "ph": "X",
                        "ts": span.start_s * 1e6,
                        "dur": span.duration_s * 1e6,
                        "pid": 1,
                        "tid": tid,
                        "args": {
                            "trace_id": span.trace_id,
                            "span_id": span.span_id,
                            "parent_id": span.parent_id,
                            **span.meta,
                        },
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path: str) -> int:
        """Write :meth:`chrome_trace` to ``path``; returns the trace count."""
        payload = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(self.trace_ids())


# ---------------------------------------------------------------------------
# boundary crossing
# ---------------------------------------------------------------------------


def replica_span_records(
    contexts: Sequence[Tuple[str, str]],
    pid: int,
    token: int,
    rel_start_s: float,
    rel_end_s: float,
    name: str = "replica_run",
    **meta: object,
) -> List[Dict[str, object]]:
    """Child-span records a replica reports back to the dispatching parent.

    ``contexts`` is the dispatch payload's ``(trace_id, parent_span_id)``
    list — one per traced request in the batch.  Times are *relative to the
    replica's own entry* (a worker process's monotonic clock shares no epoch
    with the parent's); the parent rebases them when splicing
    (:meth:`DispatchTraceRecorder.add_replica_records`).  ``token`` is a
    per-process uniquifier so retried attempts do not collide on span ids.
    The records are plain dicts of scalars, so they pickle across the
    process boundary unchanged.
    """
    return [
        {
            "trace_id": str(trace_id),
            "parent_id": str(parent_id),
            "span_id": f"p{int(pid)}.{int(token)}.{index}",
            "name": str(name),
            "rel_start_s": float(rel_start_s),
            "rel_end_s": float(rel_end_s),
            "meta": {"pid": int(pid), **meta},
        }
        for index, (trace_id, parent_id) in enumerate(contexts)
    ]


class DispatchTraceRecorder:
    """Span context carrier for one micro-batch dispatch.

    Built by the dispatch loop when a batch contains traced requests and
    threaded through ``EngineWorkerPool.submit`` down to the replica.  Not
    locked: ownership moves dispatch loop → pool thread → completion callback
    with a happens-before edge at each step, and no two threads touch it
    concurrently.

    ``events`` are batch-level (retry/restart) intervals that apply to every
    traced request; ``replica_records`` are fully-addressed child spans the
    replica produced (see :func:`replica_span_records`), already rebased onto
    the parent's clock.
    """

    __slots__ = ("contexts", "events", "replica_records")

    def __init__(self, contexts: Sequence[Tuple[str, str]]) -> None:
        self.contexts: List[Tuple[str, str]] = list(contexts)
        self.events: List[Dict[str, object]] = []
        self.replica_records: List[Dict[str, object]] = []

    def add_event(self, name: str, start_s: float, end_s: float, **meta: object) -> None:
        """Record one batch-level interval (e.g. a retry attempt)."""
        self.events.append(
            {
                "name": str(name),
                "start_s": float(start_s),
                "end_s": float(end_s),
                "meta": dict(meta),
            }
        )

    def add_replica_records(
        self, records: Iterable[Dict[str, object]], base_s: float
    ) -> None:
        """Splice replica-produced records, rebasing relative times on ``base_s``."""
        for record in records:
            self.replica_records.append(
                {
                    "trace_id": record["trace_id"],
                    "span_id": record["span_id"],
                    "parent_id": record["parent_id"],
                    "name": record["name"],
                    "start_s": base_s + float(record["rel_start_s"]),
                    "end_s": base_s + float(record["rel_end_s"]),
                    "meta": dict(record.get("meta") or {}),
                }
            )
