"""Offline trace-file analysis: ``python -m repro trace-report``.

Loads a Chrome trace-event JSON file written by ``--trace-out`` (or
:meth:`repro.obs.Tracer.export_chrome`), groups the complete ("X") events by
trace id, and summarizes where the time went: per-stage count / mean /
p50 / p95 / p99 / max plus the slowest end-to-end requests with their stage
breakdowns — the same question ``stage_breakdown`` answers online, answered
after the fact from a file.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.obs.tracing import ROOT_SPAN_NAME, STAGES

__all__ = [
    "format_report",
    "load_chrome_trace",
    "summarize_chrome_trace",
]

_PERCENTILES = (50, 95, 99)


def load_chrome_trace(path: str) -> List[Dict[str, object]]:
    """The ``traceEvents`` list of a Chrome trace JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, list):
        return payload
    events = payload.get("traceEvents") if isinstance(payload, dict) else None
    if not isinstance(events, list):
        raise SimulationError(f"{path}: not a Chrome trace-event JSON file")
    return events


def _duration_stats(durations_ms: Sequence[float]) -> Dict[str, float]:
    values = np.asarray(durations_ms, dtype=np.float64)
    stats = {
        "count": int(values.size),
        "mean_ms": float(values.mean()),
        "max_ms": float(values.max()),
    }
    for q in _PERCENTILES:
        stats[f"p{q}_ms"] = float(np.percentile(values, q))
    return stats


def summarize_chrome_trace(
    events: Sequence[Dict[str, object]], top: int = 5
) -> Dict[str, object]:
    """Aggregate span events into per-stage stats and slowest-trace exemplars."""
    stage_durations: Dict[str, List[float]] = {}
    trace_e2e: Dict[str, float] = {}
    trace_stages: Dict[str, Dict[str, float]] = {}
    span_events = 0
    for event in events:
        if event.get("ph") != "X":
            continue
        span_events += 1
        name = str(event.get("name", ""))
        args = event.get("args") or {}
        trace_id = str(args.get("trace_id", ""))
        duration_ms = float(event.get("dur", 0.0)) / 1e3
        if name == ROOT_SPAN_NAME:
            trace_e2e[trace_id] = duration_ms
        elif name in STAGES:
            stage_durations.setdefault(name, []).append(duration_ms)
            per_trace = trace_stages.setdefault(trace_id, {})
            per_trace[name] = per_trace.get(name, 0.0) + duration_ms
    slowest = sorted(trace_e2e.items(), key=lambda item: item[1], reverse=True)[: max(top, 0)]
    return {
        "traces": len(trace_e2e),
        "span_events": span_events,
        "e2e": _duration_stats(list(trace_e2e.values())) if trace_e2e else {},
        "stages": {
            name: _duration_stats(stage_durations[name])
            for name in STAGES
            if name in stage_durations
        },
        "slowest": [
            {
                "trace_id": trace_id,
                "e2e_ms": e2e_ms,
                "stages_ms": {
                    name: round(value, 3)
                    for name, value in sorted(trace_stages.get(trace_id, {}).items())
                },
            }
            for trace_id, e2e_ms in slowest
        ],
    }


def format_report(summary: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`summarize_chrome_trace`."""
    lines: List[str] = []
    lines.append(
        f"traces: {summary['traces']}   span events: {summary['span_events']}"
    )
    e2e = summary.get("e2e") or {}
    if e2e:
        lines.append(
            "end-to-end: "
            f"mean {e2e['mean_ms']:.3f} ms  p50 {e2e['p50_ms']:.3f}  "
            f"p95 {e2e['p95_ms']:.3f}  p99 {e2e['p99_ms']:.3f}  max {e2e['max_ms']:.3f}"
        )
    stages: Dict[str, Dict[str, float]] = summary.get("stages") or {}
    if stages:
        lines.append("")
        header = f"{'stage':<16} {'count':>7} {'mean':>9} {'p50':>9} {'p95':>9} {'p99':>9} {'max':>9}"
        lines.append(header)
        lines.append("-" * len(header))
        for name in STAGES:
            stats = stages.get(name)
            if not stats:
                continue
            lines.append(
                f"{name:<16} {stats['count']:>7d} "
                f"{stats['mean_ms']:>9.3f} {stats['p50_ms']:>9.3f} "
                f"{stats['p95_ms']:>9.3f} {stats['p99_ms']:>9.3f} {stats['max_ms']:>9.3f}"
            )
        lines.append("(durations in ms)")
    slowest: List[Dict[str, object]] = summary.get("slowest") or []
    if slowest:
        lines.append("")
        lines.append("slowest requests:")
        for entry in slowest:
            stages_ms = entry.get("stages_ms") or {}
            detail = "  ".join(f"{k}={v:.3f}" for k, v in stages_ms.items())
            lines.append(
                f"  {entry['trace_id']}  e2e {entry['e2e_ms']:.3f} ms  {detail}"
            )
    return "\n".join(lines)


def report_from_file(path: str, top: int = 5) -> Dict[str, object]:
    """Load + summarize in one call (what the CLI subcommand uses)."""
    return summarize_chrome_trace(load_chrome_trace(path), top=top)
