"""Slow-request exemplar log: structured JSON lines keyed by trace id.

When a delivered request's end-to-end latency crosses the threshold the
server emits one JSON object per line — model, sequence number, latency,
trace id, and the per-stage millisecond breakdown — so a tail-latency
investigation starts from concrete exemplars (`grep` the trace id, then
``GET /v1/trace/{id}`` or the Chrome trace export) instead of aggregates.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, Mapping, Optional, TextIO

from repro.concurrency import make_lock, thread_shared

__all__ = ["SlowRequestLog"]


@thread_shared
class SlowRequestLog:
    """Writes one JSON line per request slower than ``threshold_s``.

    ``stream`` defaults to stderr; anything with a ``write`` method works
    (tests pass ``io.StringIO``).  Wall-clock ``ts`` is included so exemplar
    lines can be correlated with external logs; all latency figures remain
    monotonic-clock durations.
    """

    def __init__(
        self,
        threshold_s: float,
        stream: Optional[TextIO] = None,
        wall_clock=time.time,
    ) -> None:
        self.threshold_s = float(threshold_s)
        self._stream = stream if stream is not None else sys.stderr
        self._wall_clock = wall_clock
        self._lock = make_lock("SlowRequestLog._lock")
        self._emitted = 0

    @property
    def emitted(self) -> int:
        with self._lock:
            return self._emitted

    def observe(
        self,
        *,
        model: str,
        seq: int,
        latency_s: float,
        trace_id: Optional[str] = None,
        stages_s: Optional[Mapping[str, float]] = None,
    ) -> bool:
        """Log the request if it is slow enough; returns whether it was."""
        if latency_s < self.threshold_s:
            return False
        entry: Dict[str, object] = {
            "event": "slow_request",
            "ts": self._wall_clock(),
            "model": str(model),
            "seq": int(seq),
            "latency_ms": round(float(latency_s) * 1e3, 3),
            "threshold_ms": round(self.threshold_s * 1e3, 3),
            "trace_id": trace_id,
        }
        if stages_s:
            entry["stages_ms"] = {
                name: round(float(value) * 1e3, 3)
                for name, value in sorted(stages_s.items())
            }
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self._emitted += 1
            self._stream.write(line + "\n")
        return True
