"""Unified metrics registry with Prometheus text exposition.

One :class:`MetricsRegistry` per server collects every subsystem's numbers —
`ServeTelemetry`, `EngineWorkerPool`, `Autoscaler`, `CircuitBreaker`, and the
accelerator's functional statistics all register here — and renders them two
ways: Prometheus text exposition format 0.0.4 (``GET /metrics``) and JSON
(inside ``GET /v1/stats``).

Two registration styles:

* **Instruments** (:meth:`MetricsRegistry.counter` / :meth:`~MetricsRegistry.gauge`
  / :meth:`~MetricsRegistry.histogram`): live objects the caller increments /
  sets / observes.  Families support labels via ``.labels(name=value)``;
  zero-label families can be used directly.  Creation is idempotent — asking
  for an existing name with the same type and label names returns the
  existing family.
* **Collectors** (:meth:`MetricsRegistry.register_collector`): a callable
  evaluated at scrape time returning family dicts
  (``{"name", "type", "help", "samples": [(labels_dict, value), ...]}``).
  This is how subsystems that already keep their own counters under their
  own locks export without double bookkeeping.  Collector families with the
  same name (e.g. accelerator counters from several replicas) are merged at
  render time so ``# HELP``/``# TYPE`` stay unique per family.

Everything is thread-safe; instrument updates take one short lock per family.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.concurrency import make_lock, thread_shared
from repro.errors import SimulationError

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "escape_label_value",
    "format_value",
]

#: Content type of the ``/metrics`` response.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets, tuned for sub-millisecond-to-seconds latencies.
DEFAULT_LATENCY_BUCKETS_S = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: (suffix, labels, value) — one exposition line of a family.
_Sample = Tuple[str, Dict[str, str], float]


def escape_label_value(value: object) -> str:
    """Escape a label value per the text exposition format."""
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: object) -> str:
    """Render a sample value: integers without a decimal point, IEEE specials
    in Prometheus spelling."""
    number = float(value)
    if number != number:
        return "NaN"
    if number == float("inf"):
        return "+Inf"
    if number == float("-inf"):
        return "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_label_set(labels: Mapping[str, object]) -> str:
    """``{a="x",b="y"}`` with sorted names and escaped values ('' if empty)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{escape_label_value(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _validate_metric_name(name: str) -> str:
    if not _METRIC_NAME_RE.match(name):
        raise SimulationError(f"invalid metric name: {name!r}")
    return name


def _validate_label_names(labelnames: Sequence[str]) -> Tuple[str, ...]:
    names = tuple(str(name) for name in labelnames)
    for name in names:
        if not _LABEL_NAME_RE.match(name) or name == "le":
            raise SimulationError(f"invalid label name: {name!r}")
    if len(set(names)) != len(names):
        raise SimulationError(f"duplicate label names: {names!r}")
    return names


# ---------------------------------------------------------------------------
# instrument children (one per label-value combination)
# ---------------------------------------------------------------------------


class _CounterChild:
    __slots__ = ("_family", "_value")

    def __init__(self, family: "MetricFamily") -> None:
        self._family = family
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise SimulationError(f"counter increments must be >= 0, got {amount}")
        with self._family._lock:
            self._value += float(amount)

    @property
    def value(self) -> float:
        with self._family._lock:
            return self._value

    def _samples(self, labels: Dict[str, str]) -> List[_Sample]:
        with self._family._lock:
            return [("", labels, self._value)]


class _GaugeChild:
    __slots__ = ("_family", "_value")

    def __init__(self, family: "MetricFamily") -> None:
        self._family = family
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._family._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self._value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self._value -= float(amount)

    @property
    def value(self) -> float:
        with self._family._lock:
            return self._value

    def _samples(self, labels: Dict[str, str]) -> List[_Sample]:
        with self._family._lock:
            return [("", labels, self._value)]


class _HistogramChild:
    __slots__ = ("_family", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, family: "Histogram") -> None:
        self._family = family
        self._bounds = family.buckets
        self._counts = [0] * len(self._bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        number = float(value)
        with self._family._lock:
            self._count += 1
            self._sum += number
            index = bisect_left(self._bounds, number)
            if index < len(self._bounds):
                self._counts[index] += 1

    @property
    def count(self) -> int:
        with self._family._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._family._lock:
            return self._sum

    def _samples(self, labels: Dict[str, str]) -> List[_Sample]:
        with self._family._lock:
            counts = list(self._counts)
            total = self._count
            acc = self._sum
        samples: List[_Sample] = []
        cumulative = 0
        for bound, count in zip(self._bounds, counts):
            cumulative += count
            samples.append(
                ("_bucket", {**labels, "le": format_value(bound)}, float(cumulative))
            )
        samples.append(("_bucket", {**labels, "le": "+Inf"}, float(total)))
        samples.append(("_sum", dict(labels), acc))
        samples.append(("_count", dict(labels), float(total)))
        return samples


# ---------------------------------------------------------------------------
# families
# ---------------------------------------------------------------------------


class MetricFamily:
    """A named metric with zero or more labelled children."""

    metric_type = "untyped"

    def __init__(self, name: str, documentation: str, labelnames: Sequence[str] = ()) -> None:
        self.name = _validate_metric_name(str(name))
        self.documentation = str(documentation)
        self.labelnames = _validate_label_names(labelnames)
        self._lock = make_lock("MetricFamily._lock")
        self._children: Dict[Tuple[str, ...], object] = {}

    def _make_child(self):
        raise NotImplementedError

    def labels(self, **labelvalues: object):
        """The child for this label-value combination (created on first use)."""
        if set(labelvalues) != set(self.labelnames):
            raise SimulationError(
                f"metric {self.name} expects labels {sorted(self.labelnames)}, "
                f"got {sorted(labelvalues)}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def _default_child(self):
        if self.labelnames:
            raise SimulationError(
                f"metric {self.name} has labels {sorted(self.labelnames)}; "
                "use .labels(...) first"
            )
        return self.labels()

    def collect(self) -> Dict[str, object]:
        """Normalized family dict: ``{name, type, help, samples}``."""
        with self._lock:
            children = list(self._children.items())
        samples: List[_Sample] = []
        for key, child in children:
            labels = dict(zip(self.labelnames, key))
            samples.extend(child._samples(labels))
        return {
            "name": self.name,
            "type": self.metric_type,
            "help": self.documentation,
            "samples": samples,
        }


class Counter(MetricFamily):
    """Monotonically increasing count."""

    metric_type = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Gauge(MetricFamily):
    """A value that can go up and down."""

    metric_type = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    @property
    def value(self) -> float:
        return self._default_child().value


class Histogram(MetricFamily):
    """Cumulative-bucket histogram (Prometheus classic histogram)."""

    metric_type = "histogram"

    def __init__(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS_S))
        if not bounds:
            raise SimulationError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise SimulationError(f"histogram buckets must be strictly increasing: {bounds}")
        super().__init__(name, documentation, labelnames)
        self.buckets = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


@thread_shared
class MetricsRegistry:
    """Thread-safe home for every metric family plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = make_lock("MetricsRegistry._lock")
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], Iterable[Dict[str, object]]]] = []

    # ------------------------------------------------------------- registration
    def _get_or_create(self, cls, name, documentation, labelnames, **kwargs) -> MetricFamily:
        labelnames = _validate_label_names(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise SimulationError(
                        f"metric {name!r} already registered as "
                        f"{existing.metric_type} with labels {existing.labelnames}"
                    )
                return existing
            family = cls(name, documentation, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, documentation: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, documentation, labelnames)

    def gauge(self, name: str, documentation: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, documentation, labelnames)

    def histogram(
        self,
        name: str,
        documentation: str,
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, documentation, labelnames, buckets=buckets
        )

    def register_collector(
        self, collector: Callable[[], Iterable[Dict[str, object]]]
    ) -> None:
        """Register a scrape-time callable returning family dicts
        (``{"name", "type", "help", "samples": [(labels, value), ...]}``)."""
        with self._lock:
            self._collectors.append(collector)

    # ------------------------------------------------------------------ scraping
    def collect(self) -> List[Dict[str, object]]:
        """Every family (instruments + collectors), merged by name, sorted."""
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors)
        merged: Dict[str, Dict[str, object]] = {}
        ordered: List[str] = []

        def _absorb(family: Dict[str, object], samples: List[_Sample]) -> None:
            name = _validate_metric_name(str(family["name"]))
            slot = merged.get(name)
            if slot is None:
                merged[name] = {
                    "name": name,
                    "type": str(family.get("type", "untyped")),
                    "help": str(family.get("help", "")),
                    "samples": list(samples),
                }
                ordered.append(name)
            else:
                slot["samples"].extend(samples)

        for family in families:
            collected = family.collect()
            _absorb(collected, collected["samples"])
        for collector in collectors:
            for family in collector():
                samples = [
                    ("", dict(labels), float(value))
                    for labels, value in family.get("samples", ())
                ]
                _absorb(family, samples)
        return [merged[name] for name in sorted(ordered)]

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4 (the ``/metrics`` body)."""
        lines: List[str] = []
        for family in self.collect():
            name = family["name"]
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
            lines.append(f"# TYPE {name} {family['type']}")
            for suffix, labels, value in family["samples"]:
                lines.append(
                    f"{name}{suffix}{render_label_set(labels)} {format_value(value)}"
                )
        return "\n".join(lines) + "\n"

    def render_json(self) -> Dict[str, object]:
        """JSON view of the same families (embedded in ``GET /v1/stats``)."""
        payload: Dict[str, object] = {}
        for family in self.collect():
            payload[family["name"]] = {
                "type": family["type"],
                "help": family["help"],
                "samples": [
                    {
                        "name": f"{family['name']}{suffix}",
                        "labels": dict(labels),
                        "value": float(value),
                    }
                    for suffix, labels, value in family["samples"]
                ],
            }
        return payload
