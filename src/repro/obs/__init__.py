"""Observability layer: per-request tracing, metrics registry, slow-request log.

Three parts, wired through the serving pipeline (`repro.serve`):

* :mod:`repro.obs.tracing` — `Tracer`/`RequestTrace`/`Span`: one trace per
  request with stage spans that tile admit→deliver exactly, propagated
  across the process-replica boundary, exported as Chrome trace-event JSON.
* :mod:`repro.obs.metrics` — `MetricsRegistry` with Counter/Gauge/Histogram
  instruments plus scrape-time collectors; renders Prometheus text
  exposition (``GET /metrics``) and JSON (``GET /v1/stats``).
* :mod:`repro.obs.slowlog` — `SlowRequestLog`: JSON-lines exemplars for
  requests over a latency threshold, carrying trace ids.

:mod:`repro.obs.report` summarizes an exported trace file offline
(``python -m repro trace-report``).  See docs/observability.md.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
)
from repro.obs.report import format_report, load_chrome_trace, summarize_chrome_trace
from repro.obs.slowlog import SlowRequestLog
from repro.obs.tracing import (
    DEFAULT_TRACE_CAPACITY,
    ROOT_SPAN_NAME,
    STAGES,
    DispatchTraceRecorder,
    RequestTrace,
    Span,
    Tracer,
    replica_span_records,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_S",
    "DEFAULT_TRACE_CAPACITY",
    "DispatchTraceRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROMETHEUS_CONTENT_TYPE",
    "ROOT_SPAN_NAME",
    "RequestTrace",
    "STAGES",
    "SlowRequestLog",
    "Span",
    "Tracer",
    "escape_label_value",
    "format_report",
    "load_chrome_trace",
    "replica_span_records",
    "summarize_chrome_trace",
]
