"""Off-chip DRAM model.

The paper argues for a co-packaged HBM stack at 3.9 pJ/bit instead of DRAM
reached through a PCIe switch at ~15 pJ/bit (Section IV, [21]); both variants
are modelled here so the ablation benchmark can compare them.  DRAM bandwidth
is also tracked so the simulator can check that memory transfers do not
become the latency bottleneck.
"""

from __future__ import annotations

from repro.config.technology import TechnologyConfig
from repro.errors import SimulationError
from repro.memory.trace import TrafficCounter


class DRAMModel:
    """Off-chip DRAM characterised by energy per bit and peak bandwidth.

    Parameters
    ----------
    kind:
        ``"hbm"`` (co-packaged, 3.9 pJ/bit) or ``"pcie"`` (switch-attached,
        15 pJ/bit).
    technology:
        Device constants supplying the per-bit energies and HBM bandwidth.
    """

    VALID_KINDS = ("hbm", "pcie")

    def __init__(self, kind: str = "hbm", technology: TechnologyConfig | None = None) -> None:
        if kind not in self.VALID_KINDS:
            raise SimulationError(
                f"DRAM kind must be one of {self.VALID_KINDS}, got {kind!r}"
            )
        self.kind = kind
        self.technology = technology or TechnologyConfig()
        self.traffic = TrafficCounter()

    # ------------------------------------------------------------------ costs
    @property
    def energy_per_bit_j(self) -> float:
        """Access energy per bit for the configured DRAM kind (J)."""
        if self.kind == "hbm":
            return self.technology.dram_energy_per_bit_j
        return self.technology.dram_pcie_energy_per_bit_j

    @property
    def bandwidth_bits_per_s(self) -> float:
        """Peak DRAM bandwidth (bits/s)."""
        bandwidth = self.technology.dram_bandwidth_bits_per_s
        if self.kind == "pcie":
            # A PCIe 4.0 x16 link tops out near 256 Gb/s of payload, roughly
            # an order of magnitude below an HBM stack.
            bandwidth = min(bandwidth, 256e9)
        return bandwidth

    # ------------------------------------------------------------------ traffic
    def read(self, bits: float) -> float:
        """Record a read of ``bits`` and return its energy (J)."""
        self.traffic.record_read(bits)
        return bits * self.energy_per_bit_j

    def write(self, bits: float) -> float:
        """Record a write of ``bits`` and return its energy (J)."""
        self.traffic.record_write(bits)
        return bits * self.energy_per_bit_j

    def reset_traffic(self) -> None:
        """Zero the accumulated traffic counters."""
        self.traffic.reset()

    def transfer_time_s(self, bits: float) -> float:
        """Time to move ``bits`` at peak bandwidth (s)."""
        if bits < 0:
            raise SimulationError(f"bits must be >= 0, got {bits}")
        return bits / self.bandwidth_bits_per_s

    @property
    def total_access_energy_j(self) -> float:
        """Energy of all traffic recorded so far (J)."""
        return self.traffic.energy_j(self.energy_per_bit_j)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DRAMModel(kind={self.kind!r}, {self.energy_per_bit_j * 1e12:.1f} pJ/bit)"
