"""Memory hierarchy models: on-chip SRAM blocks and off-chip (HBM) DRAM.

The accelerator keeps input activations, filters, outputs and partial sums in
four dedicated SRAM blocks and spills to a co-packaged HBM stack when a
working set does not fit (paper Section IV).  These models provide

* capacity bookkeeping (does a layer's working set fit?),
* access-energy and area accounting,
* traffic counters used by the dataflow simulator to tally per-inference
  SRAM/DRAM bits moved.
"""

from repro.memory.dram import DRAMModel
from repro.memory.hierarchy import MemorySystem
from repro.memory.sram import SRAMBlock
from repro.memory.trace import MemoryTrafficRecord, TrafficCounter

__all__ = [
    "DRAMModel",
    "MemorySystem",
    "MemoryTrafficRecord",
    "SRAMBlock",
    "TrafficCounter",
]
