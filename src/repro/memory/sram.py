"""On-chip SRAM block model.

The paper sizes four SRAM blocks (input, filter, output, accumulator) and
budgets 50 fJ/bit of access energy and 0.45 mm² per MB of area in 45 nm CMOS
(Section IV, [20]).
"""

from __future__ import annotations

from repro.config.technology import TechnologyConfig
from repro.constants import mb_to_bits
from repro.errors import CapacityError, SimulationError
from repro.memory.trace import TrafficCounter


class SRAMBlock:
    """A single on-chip SRAM buffer.

    Parameters
    ----------
    name:
        Identifier used in traffic records ("input_sram", "filter_sram", ...).
    capacity_mb:
        Capacity in mebibytes.
    technology:
        Device constants (access energy per bit, area per MB, leakage).
    """

    def __init__(
        self,
        name: str,
        capacity_mb: float,
        technology: TechnologyConfig | None = None,
    ) -> None:
        if capacity_mb <= 0:
            raise CapacityError(f"SRAM capacity must be > 0 MB, got {capacity_mb}")
        self.name = name
        self.capacity_mb = capacity_mb
        self.technology = technology or TechnologyConfig()
        self.traffic = TrafficCounter()

    # ------------------------------------------------------------------ capacity
    @property
    def capacity_bits(self) -> float:
        """Capacity in bits."""
        return mb_to_bits(self.capacity_mb)

    def fits(self, data_bits: float) -> bool:
        """True when a working set of ``data_bits`` fits in the block."""
        if data_bits < 0:
            raise SimulationError(f"data_bits must be >= 0, got {data_bits}")
        return data_bits <= self.capacity_bits

    def occupancy_fraction(self, data_bits: float) -> float:
        """Fraction of the block occupied by a working set (may exceed 1)."""
        if data_bits < 0:
            raise SimulationError(f"data_bits must be >= 0, got {data_bits}")
        return data_bits / self.capacity_bits

    # ------------------------------------------------------------------ traffic
    def read(self, bits: float) -> float:
        """Record a read of ``bits`` and return its energy (J)."""
        self.traffic.record_read(bits)
        return bits * self.technology.sram_energy_per_bit_j

    def write(self, bits: float) -> float:
        """Record a write of ``bits`` and return its energy (J)."""
        self.traffic.record_write(bits)
        return bits * self.technology.sram_energy_per_bit_j

    def reset_traffic(self) -> None:
        """Zero the accumulated traffic counters."""
        self.traffic.reset()

    # ------------------------------------------------------------------ costs
    @property
    def energy_per_bit_j(self) -> float:
        """Access energy per bit (J)."""
        return self.technology.sram_energy_per_bit_j

    @property
    def area_mm2(self) -> float:
        """Macro area of the block (mm²)."""
        return self.capacity_mb * self.technology.sram_area_mm2_per_mb

    @property
    def leakage_power_w(self) -> float:
        """Static leakage power of the block (W)."""
        return self.capacity_mb * self.technology.sram_leakage_w_per_mb

    @property
    def total_access_energy_j(self) -> float:
        """Energy of all traffic recorded so far (J)."""
        return self.traffic.energy_j(self.energy_per_bit_j)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SRAMBlock({self.name!r}, {self.capacity_mb} MB)"
