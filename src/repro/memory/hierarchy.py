"""The accelerator's full memory system: four SRAM blocks plus DRAM.

:class:`MemorySystem` instantiates the input/filter/output/accumulator SRAM
blocks and the off-chip DRAM from a :class:`~repro.config.chip.ChipConfig`
and exposes capacity queries, aggregate area/leakage, and energy accounting
for a given traffic record.
"""

from __future__ import annotations

from typing import Dict

from repro.config.chip import ChipConfig
from repro.errors import SimulationError
from repro.memory.dram import DRAMModel
from repro.memory.sram import SRAMBlock
from repro.memory.trace import MemoryTrafficRecord


class MemorySystem:
    """The complete memory hierarchy of one accelerator chip."""

    #: Structure names used in traffic records produced by the simulator.
    INPUT = "input_sram"
    FILTER = "filter_sram"
    OUTPUT = "output_sram"
    ACCUMULATOR = "accumulator_sram"
    DRAM = "dram"

    def __init__(self, config: ChipConfig) -> None:
        self.config = config
        technology = config.technology
        self.input_sram = SRAMBlock(self.INPUT, config.sram.input_mb, technology)
        self.filter_sram = SRAMBlock(self.FILTER, config.sram.filter_mb, technology)
        self.output_sram = SRAMBlock(self.OUTPUT, config.sram.output_mb, technology)
        self.accumulator_sram = SRAMBlock(
            self.ACCUMULATOR, config.sram.accumulator_mb, technology
        )
        self.dram = DRAMModel(config.dram_kind, technology)

    # ------------------------------------------------------------------ access
    @property
    def sram_blocks(self) -> Dict[str, SRAMBlock]:
        """The four SRAM blocks keyed by structure name."""
        return {
            self.INPUT: self.input_sram,
            self.FILTER: self.filter_sram,
            self.OUTPUT: self.output_sram,
            self.ACCUMULATOR: self.accumulator_sram,
        }

    # ------------------------------------------------------------------ capacity
    def input_working_set_fits(self, bits: float) -> bool:
        """True when an input working set fits in the input SRAM."""
        return self.input_sram.fits(bits)

    def filter_working_set_fits(self, bits: float) -> bool:
        """True when a filter working set fits in the filter SRAM."""
        return self.filter_sram.fits(bits)

    # ------------------------------------------------------------------ roll-ups
    @property
    def total_sram_area_mm2(self) -> float:
        """Area of all SRAM blocks (mm²)."""
        return sum(block.area_mm2 for block in self.sram_blocks.values())

    @property
    def total_sram_leakage_w(self) -> float:
        """Leakage power of all SRAM blocks (W)."""
        return sum(block.leakage_power_w for block in self.sram_blocks.values())

    @property
    def sram_energy_per_bit_j(self) -> float:
        """SRAM access energy per bit (J)."""
        return self.config.technology.sram_energy_per_bit_j

    @property
    def dram_energy_per_bit_j(self) -> float:
        """DRAM access energy per bit for the configured DRAM kind (J)."""
        return self.dram.energy_per_bit_j

    # ------------------------------------------------------------------ energy
    def energy_for_traffic(self, record: MemoryTrafficRecord) -> Dict[str, float]:
        """Per-structure energy (J) for a traffic record.

        Unknown structure names in the record raise :class:`SimulationError`
        so that accounting bugs surface loudly instead of dropping energy.
        """
        energies: Dict[str, float] = {}
        for name, bits in record.traffic_bits.items():
            if name == self.DRAM:
                energies[name] = bits * self.dram_energy_per_bit_j
            elif name in self.sram_blocks:
                energies[name] = bits * self.sram_energy_per_bit_j
            else:
                raise SimulationError(f"unknown memory structure in traffic record: {name!r}")
        return energies

    def total_energy_for_traffic(self, record: MemoryTrafficRecord) -> float:
        """Total memory energy (J) for a traffic record."""
        return sum(self.energy_for_traffic(record).values())

    def sram_energy_for_traffic(self, record: MemoryTrafficRecord) -> float:
        """SRAM-only energy (J) for a traffic record."""
        return sum(
            energy
            for name, energy in self.energy_for_traffic(record).items()
            if name != self.DRAM
        )

    def dram_energy_for_traffic(self, record: MemoryTrafficRecord) -> float:
        """DRAM-only energy (J) for a traffic record."""
        return self.energy_for_traffic(record).get(self.DRAM, 0.0)
