"""Traffic accounting primitives shared by the SRAM and DRAM models.

The dataflow simulator does not move real data; it counts *bits read* and
*bits written* per memory structure.  :class:`TrafficCounter` accumulates
those counts and converts them to energy, and :class:`MemoryTrafficRecord`
is the immutable per-layer summary handed to the performance models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError


@dataclass
class TrafficCounter:
    """Mutable read/write bit counters for one memory structure."""

    bits_read: float = 0.0
    bits_written: float = 0.0

    def record_read(self, bits: float) -> None:
        """Add ``bits`` to the read counter."""
        if bits < 0:
            raise SimulationError(f"cannot record a negative read of {bits} bits")
        self.bits_read += bits

    def record_write(self, bits: float) -> None:
        """Add ``bits`` to the write counter."""
        if bits < 0:
            raise SimulationError(f"cannot record a negative write of {bits} bits")
        self.bits_written += bits

    @property
    def total_bits(self) -> float:
        """Total bits moved (reads + writes)."""
        return self.bits_read + self.bits_written

    def energy_j(self, energy_per_bit_j: float) -> float:
        """Energy for all recorded traffic at ``energy_per_bit_j``."""
        if energy_per_bit_j < 0:
            raise SimulationError("energy_per_bit_j must be >= 0")
        return self.total_bits * energy_per_bit_j

    def merge(self, other: "TrafficCounter") -> "TrafficCounter":
        """Return a new counter with this counter's and ``other``'s traffic."""
        return TrafficCounter(
            bits_read=self.bits_read + other.bits_read,
            bits_written=self.bits_written + other.bits_written,
        )

    def reset(self) -> None:
        """Zero both counters."""
        self.bits_read = 0.0
        self.bits_written = 0.0


@dataclass(frozen=True)
class MemoryTrafficRecord:
    """Immutable summary of memory traffic, keyed by structure name.

    The dataflow simulator produces one record per layer and one aggregated
    record per network; the power model multiplies each structure's bits by
    its energy-per-bit.
    """

    traffic_bits: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, bits in self.traffic_bits.items():
            if bits < 0:
                raise SimulationError(
                    f"traffic for {name!r} must be >= 0 bits, got {bits}"
                )

    def bits(self, name: str) -> float:
        """Bits moved by the named structure (0 if absent)."""
        return self.traffic_bits.get(name, 0.0)

    @property
    def total_bits(self) -> float:
        """Total bits moved across all structures."""
        return sum(self.traffic_bits.values())

    def scaled(self, factor: float) -> "MemoryTrafficRecord":
        """Return a record with every entry multiplied by ``factor``."""
        if factor < 0:
            raise SimulationError(f"scale factor must be >= 0, got {factor}")
        return MemoryTrafficRecord(
            {name: bits * factor for name, bits in self.traffic_bits.items()}
        )

    def merged(self, other: "MemoryTrafficRecord") -> "MemoryTrafficRecord":
        """Return a record combining this record's and ``other``'s traffic."""
        combined = dict(self.traffic_bits)
        for name, bits in other.traffic_bits.items():
            combined[name] = combined.get(name, 0.0) + bits
        return MemoryTrafficRecord(combined)
