"""Setuptools entry point.

The offline build environment ships without the ``wheel`` package, so the
PEP 517 editable-wheel path is unavailable; providing a classic ``setup.py``
lets ``pip install -e .`` fall back to the legacy develop install.
"""

from pathlib import Path

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Scalable coherent optical crossbar (PCM) AI accelerator modeling framework — "
        "reproduction of Sturm & Moazeni, DATE 2023"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    author="Reproduction Authors",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
)
